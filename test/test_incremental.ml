(* Dependency-cone incremental verification (ISSUE 8).

   Three layers under test:

   - [Rc_refinedc.Depgraph]: the per-file call/spec dependency graph —
     edges are exactly the direct references a check can observe, the
     dirty cone of an interface edit is the transitive-dependent set,
     and a function's cache-key components name exactly its own
     body/spec plus its direct callees' interfaces;
   - [Rc_util.Vercache]'s keyed entries: every miss is explained
     (new / changed:<components> / evicted / collision), and the store
     reports and size-caps itself;
   - the driver end-to-end: a warm cache plus a single edit re-verifies
     *exactly* the edit's cone (early cutoff for body edits), verdicts
     are identical with incrementality on, off, replayed, and at any
     [-j], and the [--json] output is byte-identical across [-j].

   The synthetic fixtures come from [Rc_benchgen.Corpus], whose [?edit]
   parameter moves exactly one function's body digest, spec signature,
   or loop invariant — so every expected dirty set is known by
   construction. *)

module Driver = Rc_frontend.Driver
module Depgraph = Rc_refinedc.Depgraph
module Vercache = Rc_util.Vercache
module Api = Rc_session.Refinedc_api
module Corpus = Rc_benchgen.Corpus

let fresh_cache_dir () = Testutil.scratch_dir "inccache"

let elab src =
  let session = Api.create_session () in
  (Driver.parse_and_elab ~session ~file:"inc_test.c" src)
    .Rc_frontend.Elab.to_check

let graph_of src = Depgraph.build (elab src)

let check ?session ?jobs ~cache src =
  Driver.check_source ?session ?jobs ~cache ~file:"inc_test.c" src

let counters (t : Driver.t) =
  match t.Driver.cache_stats with
  | Some hm -> hm
  | None -> Alcotest.fail "expected cache statistics"

let all_ok (t : Driver.t) = Driver.errors t = [] && t.Driver.skipped = []

let expect name ~hits ~misses t =
  if not (all_ok t) then Alcotest.failf "%s: verification failed" name;
  Alcotest.(check (pair int int)) name (hits, misses) (counters t)

(* the functions a run actually re-proved (not replayed), source order *)
let reverified (t : Driver.t) =
  List.filter_map
    (fun (r : Driver.check_result) ->
      if r.Driver.cached then None else Some r.Driver.name)
    t.Driver.results

let why_of (t : Driver.t) name =
  match
    List.find_opt (fun (r : Driver.check_result) -> r.Driver.name = name)
      t.Driver.results
  with
  | Some r -> Option.value ~default:"?" r.Driver.why
  | None -> Alcotest.failf "no result for %s" name

(* The verdict surface that must never depend on caching, scheduling or
   parallelism: per-function status + Figure-7 statistics, in source
   order, plus the run's exit code. *)
let verdict_sig (t : Driver.t) : string list =
  Fmt.str "exit:%d" (Driver.exit_code t)
  :: List.map
       (fun (r : Driver.check_result) ->
         match r.outcome with
         | Ok res ->
             let s = res.Rc_refinedc.Lang.E.stats in
             Fmt.str "%s:ok:%d:%d:%d:%d" r.Driver.name
               s.Rc_lithium.Stats.rule_apps s.Rc_lithium.Stats.evar_insts
               s.Rc_lithium.Stats.side_auto s.Rc_lithium.Stats.side_manual
         | Error e ->
             Fmt.str "%s:err:%s" r.Driver.name (Rc_lithium.Report.to_string e))
       t.Driver.results

(* ------------------------------------------------------------------ *)
(* Depgraph structure                                                  *)
(* ------------------------------------------------------------------ *)

let chain n = Corpus.call_chain ~n ()

let depgraph_tests =
  [
    Alcotest.test_case "chain edges are the direct callees" `Quick (fun () ->
        let g = graph_of (chain 6) in
        (* call_chain emits callee-first: f5 .. f0 in source order *)
        Alcotest.(check (list string)) "names, source order"
          [ "f5"; "f4"; "f3"; "f2"; "f1"; "f0" ]
          (Depgraph.names g);
        Alcotest.(check (list string)) "f0 deps" [ "f1" ]
          (Depgraph.direct_deps g "f0");
        Alcotest.(check (list string)) "leaf has no deps" []
          (Depgraph.direct_deps g "f5");
        Alcotest.(check (list string)) "f5's callers" [ "f4" ]
          (Depgraph.dependents g "f5");
        Alcotest.(check (list string)) "f0 has no callers" []
          (Depgraph.dependents g "f0"));
    Alcotest.test_case "topological order puts callees first" `Quick
      (fun () ->
        let g = graph_of (chain 6) in
        Alcotest.(check (list string)) "topo"
          [ "f5"; "f4"; "f3"; "f2"; "f1"; "f0" ]
          (Depgraph.topo_order g);
        (* an independent farm has no edges: topo = source order *)
        let g2 = graph_of (Corpus.loop_farm ~functions:3 ()) in
        Alcotest.(check (list string)) "edgeless topo = source order"
          [ "count0"; "count1"; "count2" ]
          (Depgraph.topo_order g2));
    Alcotest.test_case "cone = transitive dependents, source order" `Quick
      (fun () ->
        let g = graph_of (chain 6) in
        Alcotest.(check (list string)) "mid-chain cone"
          [ "f3"; "f2"; "f1"; "f0" ]
          (Depgraph.cone g [ "f3" ]);
        Alcotest.(check (list string)) "root-only cone" [ "f0" ]
          (Depgraph.cone g [ "f0" ]);
        Alcotest.(check (list string)) "leaf cone is the whole chain"
          [ "f5"; "f4"; "f3"; "f2"; "f1"; "f0" ]
          (Depgraph.cone g [ "f5" ]);
        let g2 = graph_of (Corpus.loop_farm ~functions:3 ()) in
        Alcotest.(check (list string)) "no edges: cone = roots" [ "count1" ]
          (Depgraph.cone g2 [ "count1" ]));
    Alcotest.test_case "components name exactly the direct cone" `Quick
      (fun () ->
        let fns = elab (chain 4) in
        let g = Depgraph.build fns in
        let session = Api.create_session () in
        let f2 =
          List.find
            (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
              f.spec.Rc_refinedc.Rtype.fs_name = "f2")
            fns
        in
        Alcotest.(check (list string)) "component names"
          [ "config"; "budget"; "body"; "spec"; "callee:f3" ]
          (List.map fst (Depgraph.components ~session g f2));
        (* the leaf's components have no callee entries at all *)
        let f3 =
          List.find
            (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
              f.spec.Rc_refinedc.Rtype.fs_name = "f3")
            fns
        in
        Alcotest.(check (list string)) "leaf component names"
          [ "config"; "budget"; "body"; "spec" ]
          (List.map fst (Depgraph.components ~session g f3)));
    Alcotest.test_case "body edit moves only that body digest" `Quick
      (fun () ->
        let g = graph_of (chain 5) in
        let g' = graph_of (Corpus.call_chain ~edit:(`Body 2) ~n:5 ()) in
        List.iter
          (fun name ->
            let n = Option.get (Depgraph.node g name) in
            let n' = Option.get (Depgraph.node g' name) in
            Alcotest.(check bool)
              (name ^ " body digest moved iff edited")
              (name = "f2")
              (n.Depgraph.n_body_digest <> n'.Depgraph.n_body_digest);
            (* a body edit is invisible at the interface: early cutoff *)
            Alcotest.(check string)
              (name ^ " iface digest unchanged")
              n.Depgraph.n_iface_digest n'.Depgraph.n_iface_digest)
          (Depgraph.names g));
    Alcotest.test_case "spec edit moves only that interface digest" `Quick
      (fun () ->
        let g = graph_of (chain 5) in
        let g' = graph_of (Corpus.call_chain ~edit:(`Spec 2) ~n:5 ()) in
        List.iter
          (fun name ->
            let n = Option.get (Depgraph.node g name) in
            let n' = Option.get (Depgraph.node g' name) in
            Alcotest.(check bool)
              (name ^ " iface digest moved iff edited")
              (name = "f2")
              (n.Depgraph.n_iface_digest <> n'.Depgraph.n_iface_digest);
            Alcotest.(check string)
              (name ^ " body digest unchanged")
              n.Depgraph.n_body_digest n'.Depgraph.n_body_digest)
          (Depgraph.names g));
  ]

(* ------------------------------------------------------------------ *)
(* Keyed cache entries: explained misses, stats, size cap              *)
(* ------------------------------------------------------------------ *)

let reason = Alcotest.testable
    (Fmt.of_to_string Vercache.reason_label)
    (fun a b -> Vercache.reason_label a = Vercache.reason_label b)

let klookup name expected actual =
  match (expected, actual) with
  | Vercache.KHit e, Vercache.KHit a -> Alcotest.(check string) name e a
  | Vercache.KMiss e, Vercache.KMiss a -> Alcotest.check reason name e a
  | Vercache.KHit _, Vercache.KMiss r ->
      Alcotest.failf "%s: expected hit, missed (%s)" name
        (Vercache.reason_label r)
  | Vercache.KMiss r, Vercache.KHit _ ->
      Alcotest.failf "%s: expected miss (%s), hit" name
        (Vercache.reason_label r)

let keyed_tests =
  [
    Alcotest.test_case "misses are explained" `Quick (fun () ->
        let vc = Vercache.create (fresh_cache_dir ()) in
        let id = "fn-identity" in
        let cs = [ ("body", "b1"); ("spec", "s1"); ("callee:g", "g1") ] in
        klookup "never stored: new" (Vercache.KMiss Vercache.Fresh)
          (Vercache.find_keyed vc ~id ~components:cs);
        Vercache.store_keyed vc ~id ~components:cs "payload";
        klookup "stored: hit" (Vercache.KHit "payload")
          (Vercache.find_keyed vc ~id ~components:cs);
        klookup "one component moved"
          (Vercache.KMiss (Vercache.Changed [ "body" ]))
          (Vercache.find_keyed vc ~id
             ~components:[ ("body", "b2"); ("spec", "s1"); ("callee:g", "g1") ]);
        klookup "two components moved"
          (Vercache.KMiss (Vercache.Changed [ "spec"; "callee:g" ]))
          (Vercache.find_keyed vc ~id
             ~components:[ ("body", "b1"); ("spec", "s2"); ("callee:g", "g2") ]);
        klookup "a callee appeared"
          (Vercache.KMiss (Vercache.Changed [ "callee:h" ]))
          (Vercache.find_keyed vc ~id ~components:(cs @ [ ("callee:h", "h1") ]));
        klookup "a callee disappeared"
          (Vercache.KMiss (Vercache.Changed [ "callee:g" ]))
          (Vercache.find_keyed vc ~id
             ~components:[ ("body", "b1"); ("spec", "s1") ]);
        Alcotest.(check string) "label spelling" "changed:spec+callee:g"
          (Vercache.reason_label
             (Vercache.Changed [ "spec"; "callee:g" ])));
    Alcotest.test_case "evicted and collision are distinguished" `Quick
      (fun () ->
        let dir = fresh_cache_dir () in
        let vc = Vercache.create dir in
        let id = "fn-identity" in
        let cs = [ ("body", "b1"); ("spec", "s1") ] in
        Vercache.store_keyed vc ~id ~components:cs "payload";
        (* remove the payload but keep the manifest: pruned/swept *)
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".vc" then
              Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        klookup "payload gone, inputs unchanged"
          (Vercache.KMiss Vercache.Evicted)
          (Vercache.find_keyed vc ~id ~components:cs);
        (* a corrupt entry at the slot is a collision, never a verdict *)
        Vercache.store_keyed vc ~id ~components:cs "payload";
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".vc" then
              Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
                  Out_channel.output_string oc "garbage"))
          (Sys.readdir dir);
        klookup "corrupt entry" (Vercache.KMiss Vercache.Collision)
          (Vercache.find_keyed vc ~id ~components:cs));
    Alcotest.test_case "store stats and the size cap" `Quick (fun () ->
        let dir = fresh_cache_dir () in
        let vc = Vercache.create dir in
        for i = 1 to 5 do
          Vercache.store_keyed vc
            ~id:(Printf.sprintf "id%d" i)
            ~components:[ ("body", string_of_int i) ]
            (String.make 100 'x')
        done;
        let s = Vercache.stats vc in
        Alcotest.(check int) "entries" 5 s.Vercache.st_entries;
        Alcotest.(check int) "manifests" 5 s.Vercache.st_manifests;
        Alcotest.(check bool) "bytes counted" true (s.Vercache.st_bytes > 500);
        Alcotest.(check int) "no corruption" 0 s.Vercache.st_corrupt_skips;
        (* reopening under a tiny cap prunes oldest-first down to size *)
        let capped = Vercache.create ~max_bytes:0 dir in
        let s' = Vercache.stats capped in
        Alcotest.(check int) "cap 0 empties the store" 0
          (s'.Vercache.st_entries + s'.Vercache.st_manifests);
        Alcotest.(check bool) "prunes reported" true
          (s'.Vercache.st_pruned >= 10));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end dirty cones through the driver                           *)
(* ------------------------------------------------------------------ *)

let cone_tests =
  [
    Alcotest.test_case "warm cache replays everything" `Quick (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        let t = check ~cache (chain 6) in
        expect "cold" ~hits:0 ~misses:6 t;
        List.iter
          (fun n -> Alcotest.(check string) (n ^ " why") "new" (why_of t n))
          (reverified t);
        let w = check ~cache (chain 6) in
        expect "warm" ~hits:6 ~misses:0 w;
        Alcotest.(check (list string)) "nothing re-verified" [] (reverified w);
        Alcotest.(check (list string)) "nothing scheduled" []
          w.Driver.schedule);
    Alcotest.test_case "body edit re-verifies exactly one function" `Quick
      (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        expect "cold" ~hits:0 ~misses:6 (check ~cache (chain 6));
        (* early cutoff: f3's body moved, its interface did not — its
           caller f2's key mentions only the interface, so f2 hits *)
        let t = check ~cache (Corpus.call_chain ~edit:(`Body 3) ~n:6 ()) in
        expect "after body edit" ~hits:5 ~misses:1 t;
        Alcotest.(check (list string)) "dirty set" [ "f3" ] (reverified t);
        Alcotest.(check string) "explained" "changed:body" (why_of t "f3");
        Alcotest.(check string) "caller replayed" "hit" (why_of t "f2"));
    Alcotest.test_case "spec edit re-verifies its dependent cone" `Quick
      (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        expect "cold" ~hits:0 ~misses:6 (check ~cache (chain 6));
        (* f3's interface moved: f3 re-proves against its new spec, and
           its direct caller f2 re-proves against the new callee
           interface; f1 (which only sees f2's unchanged interface)
           still hits — the cone stops at the first unchanged interface *)
        let t = check ~cache (Corpus.call_chain ~edit:(`Spec 3) ~n:6 ()) in
        expect "after spec edit" ~hits:4 ~misses:2 t;
        Alcotest.(check (list string)) "dirty set" [ "f3"; "f2" ]
          (reverified t);
        Alcotest.(check string) "the edited fn" "changed:spec" (why_of t "f3");
        Alcotest.(check string) "its caller" "changed:callee:f3"
          (why_of t "f2");
        Alcotest.(check string) "the caller's caller" "hit" (why_of t "f1"));
    Alcotest.test_case "invariant edit is a body-level change" `Quick
      (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        let farm = Corpus.loop_farm ~functions:4 () in
        expect "cold" ~hits:0 ~misses:4 (check ~cache farm);
        let t = check ~cache (Corpus.loop_farm ~edit:(`Inv 2) ~functions:4 ())
        in
        expect "after invariant edit" ~hits:3 ~misses:1 t;
        Alcotest.(check (list string)) "dirty set" [ "count2" ] (reverified t);
        Alcotest.(check string) "explained as body" "changed:body"
          (why_of t "count2"));
    Alcotest.test_case "spec edit in an edgeless farm stays local" `Quick
      (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        let farm ?edit () = Corpus.diamond_farm ?edit ~functions:3 ~k:2 () in
        expect "cold" ~hits:0 ~misses:3 (check ~cache (farm ()));
        let t = check ~cache (farm ~edit:(`Spec 1) ()) in
        expect "after spec edit" ~hits:2 ~misses:1 t;
        Alcotest.(check (list string)) "dirty set" [ "dia1" ] (reverified t));
    Alcotest.test_case "the schedule lists exactly the dirty set" `Quick
      (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        let cold = check ~cache (chain 6) in
        Alcotest.(check int) "cold schedules everything" 6
          (List.length cold.Driver.schedule);
        let t = check ~cache (Corpus.call_chain ~edit:(`Spec 3) ~n:6 ()) in
        Alcotest.(check (list string)) "dirty schedule"
          (List.sort compare [ "f3"; "f2" ])
          (List.sort compare t.Driver.schedule));
  ]

(* ------------------------------------------------------------------ *)
(* Equivalence: incremental on/off, cold/warm, -j1/-j4                 *)
(* ------------------------------------------------------------------ *)

let legacy_session () = Api.create_session ~incremental:false ()

(* cold+cached, warm replay, legacy whole-file keying, and uncached:
   four runs whose verdict surfaces must be equal *)
let assert_equivalent name src =
  let cache = Vercache.create (fresh_cache_dir ()) in
  let cold = check ~cache src in
  let warm = check ~cache src in
  let legacy =
    check ~session:(legacy_session ())
      ~cache:(Vercache.create (fresh_cache_dir ()))
      src
  in
  let uncached =
    Driver.check_source ~session:(Api.create_session ()) ~file:"inc_test.c"
      src
  in
  let expected = verdict_sig uncached in
  Alcotest.(check (list string)) (name ^ ": cold ≡ uncached") expected
    (verdict_sig cold);
  Alcotest.(check (list string)) (name ^ ": warm ≡ uncached") expected
    (verdict_sig warm);
  Alcotest.(check (list string)) (name ^ ": legacy ≡ uncached") expected
    (verdict_sig legacy)

let stress_equivalence_tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("verdicts agree: " ^ name) `Quick (fun () ->
          assert_equivalent name src))
    [
      ("diamond_chain", Corpus.diamond_chain ~k:4);
      ("call_chain", Corpus.call_chain ~n:6 ());
      ("struct_nest", Corpus.struct_nest ~depth:4);
      ("wide_exprs", Corpus.wide_exprs ~stmts:4 ~width:3);
      ("loop_farm", Corpus.loop_farm ~functions:3 ());
    ]

(* The 13-study corpus: incremental on (cold, then warm replay) must
   agree with incremental off, per study. *)
let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let studies_equivalence_tests =
  List.map
    (fun file ->
      Alcotest.test_case ("verdicts agree: " ^ file) `Quick (fun () ->
          let path = Filename.concat case_dir file in
          let inc () = Rc_studies.Studies.session () in
          let legacy () =
            Rc_refinedc.Session.with_inc
              (Rc_studies.Studies.session ())
              {
                Rc_refinedc.Session.default_inc with
                Rc_refinedc.Session.in_enabled = false;
              }
          in
          let cache = Vercache.create (fresh_cache_dir ()) in
          let cold = Driver.check_file ~session:(inc ()) ~cache path in
          let warm = Driver.check_file ~session:(inc ()) ~cache path in
          let off = Driver.check_file ~session:(legacy ()) path in
          let expected = verdict_sig off in
          Alcotest.(check (list string)) "cold ≡ off" expected
            (verdict_sig cold);
          Alcotest.(check (list string)) "warm ≡ off" expected
            (verdict_sig warm)))
    [
      "mem_alloc.c"; "free_list.c"; "linked_list.c"; "queue.c";
      "binary_search.c"; "talloc.c"; "page_alloc.c"; "bst_layered.c";
      "bst_direct.c"; "hashmap.c"; "mpool.c"; "spinlock.c"; "barrier.c";
    ]

let jobs_tests =
  [
    Alcotest.test_case "-j1 and -j4 emit byte-identical JSON" `Quick
      (fun () ->
        (* two cache directories warmed identically with -j1, then the
           same single-body-edit checked at -j1 and -j4: scheduling and
           worker fan-out must leave no trace in the (timing-stripped)
           machine-readable output *)
        let src = chain 8 in
        let edited = Corpus.call_chain ~edit:(`Body 4) ~n:8 () in
        let dump t =
          Rc_util.Jsonout.to_string (Driver.to_json ~timings:false t)
        in
        let run jobs =
          let cache = Vercache.create (fresh_cache_dir ()) in
          ignore (check ~jobs:1 ~cache src);
          dump (check ~jobs ~cache edited)
        in
        Alcotest.(check string) "byte-identical" (run 1) (run 4));
    Alcotest.test_case "parallel dirty dispatch preserves the cone" `Quick
      (fun () ->
        let cache = Vercache.create (fresh_cache_dir ()) in
        expect "cold -j4" ~hits:0 ~misses:6 (check ~jobs:4 ~cache (chain 6));
        let t =
          check ~jobs:4 ~cache (Corpus.call_chain ~edit:(`Spec 3) ~n:6 ())
        in
        expect "spec edit -j4" ~hits:4 ~misses:2 t;
        Alcotest.(check (list string)) "dirty set" [ "f3"; "f2" ]
          (reverified t));
  ]

(* ------------------------------------------------------------------ *)
(* CLI: the cache-flag family warns consistently                       *)
(* ------------------------------------------------------------------ *)

let refinedc_exe =
  List.find_opt Sys.file_exists
    [ "../bin/refinedc.exe"; "bin/refinedc.exe"; "../../bin/refinedc.exe" ]

let run_cli args =
  match refinedc_exe with
  | None -> None
  | Some exe ->
      let err = Filename.temp_file "rc-cli-err" ".txt" in
      let cmd =
        Printf.sprintf "%s %s > /dev/null 2> %s" (Filename.quote exe)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote err)
      in
      let code = Sys.command cmd in
      let stderr = In_channel.with_open_bin err In_channel.input_all in
      (try Sys.remove err with Sys_error _ -> ());
      Some (code, stderr)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let cli_tests =
  [
    Alcotest.test_case "cache-family flags warn consistently" `Quick
      (fun () ->
        let c = Filename.concat (fresh_cache_dir ()) "t.c" in
        Rc_util.Vercache.create (Filename.dirname c) |> ignore;
        Out_channel.with_open_bin c (fun oc ->
            Out_channel.output_string oc (chain 2));
        let cache_dir = fresh_cache_dir () in
        match run_cli [ "check"; "--cache"; cache_dir; "--cert"; c ] with
        | None -> () (* exe not built in this sandbox; covered by CI *)
        | Some (code, stderr) ->
            Alcotest.(check int) "verifies under --cert" 0 code;
            Alcotest.(check bool) "--cache warns under --cert" true
              (contains stderr
                 "--cache is ignored under --cert");
            (* the new flags warn with the same phrasing *)
            let check_flag flag args expected =
              match run_cli (("check" :: args) @ [ c ]) with
              | None -> ()
              | Some (code, stderr) ->
                  Alcotest.(check int) (flag ^ " still verifies") 0 code;
                  Alcotest.(check bool) (flag ^ " warns") true
                    (contains stderr expected)
            in
            check_flag "--explain-cache under --cert"
              [ "--cache"; cache_dir; "--cert"; "--explain-cache" ]
              "--explain-cache is ignored under --cert";
            check_flag "--cache-stats under --cert"
              [ "--cache"; cache_dir; "--cert"; "--cache-stats" ]
              "--cache-stats is ignored under --cert";
            check_flag "--explain-cache without --cache"
              [ "--explain-cache" ]
              "--explain-cache has no effect without --cache";
            check_flag "--cache-stats without --cache" [ "--cache-stats" ]
              "--cache-stats has no effect without --cache";
            check_flag "--cache-max-mb without --cache"
              [ "--cache-max-mb"; "1" ]
              "--cache-max-mb has no effect without --cache");
    Alcotest.test_case "--explain-cache reports the plan" `Quick (fun () ->
        let dir = fresh_cache_dir () in
        Rc_util.Vercache.create dir |> ignore;
        let c = Filename.concat dir "t.c" in
        Out_channel.with_open_bin c (fun oc ->
            Out_channel.output_string oc (chain 3));
        let cache_dir = fresh_cache_dir () in
        let args =
          [ "check"; "--cache"; cache_dir; "--explain-cache"; "--json"; c ]
        in
        match run_cli args with
        | None -> ()
        | Some (_, cold_err) -> (
            Alcotest.(check bool) "cold plan re-proves" true
              (contains cold_err "cache plan: re-proving");
            match run_cli args with
            | None -> ()
            | Some (_, warm_err) ->
                Alcotest.(check bool) "warm plan is empty" true
                  (contains warm_err "cache plan: nothing dirty");
                Alcotest.(check bool) "per-function hits reported" true
                  (contains warm_err "f0: hit")));
  ]

let () =
  Alcotest.run "incremental"
    [
      ("depgraph", depgraph_tests);
      ("keyed-cache", keyed_tests);
      ("dirty-cones", cone_tests);
      ("equivalence", stress_equivalence_tests @ studies_equivalence_tests);
      ("parallel", jobs_tests);
      ("cli", cli_tests);
    ]

(* Unit tests for the Lithium engine itself, on a tiny toy judgment
   language — checking the seven goal cases of §5, the evar sealing and
   instantiation heuristics, vacuous-truth handling, the Find/FindOpt
   extensions, and the no-backtracking commitment behaviour. *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal

(* A toy language: atoms assign an integer-term "type" to a named cell;
   the only judgment is subsumption, which demands term equality. *)
module Toy = struct
  type atom = string * term
  type env = unit

  type f =
    | Sub of atom * atom * goal
    | Loop of int * goal  (* a judgment whose rule recurses [n] times *)

  and goal = (f, atom) G.goal

  let pp_atom ppf (c, t) = Fmt.pf ppf "%s ◁ %a" c pp_term t
  let pp_f ppf = function
    | Sub (a, b, _) -> Fmt.pf ppf "%a <: %a" pp_atom a pp_atom b
    | Loop (n, _) -> Fmt.pf ppf "loop %d" n

  let head_of_f = function Sub _ -> "sub" | Loop _ -> "loop"
  let head_id_of_f = function Sub _ -> 0 | Loop _ -> 1
  let head_names = [| "sub"; "loop" |]

  (* Toy judgments carry their continuation as data, so none of them are
     memoizable; the memo layer is exercised on the real language. *)
  let memo_key_of_f _ _ = None
  let loc_of_f _ = None

  let related ~exact:_ (c1, _) (c2, _) = String.equal c1 c2
  let resolve_atom r (c, t) = (c, r t)
  let mk_subsume a b g = Sub (a, b, g)
end

module E = Rc_lithium.Engine.Make (Toy)

let rules : E.rule list =
  [
    {
      E.rname = "SUB-EQ";
      prio = 10;
      heads = None;
      apply =
        (fun _ri j ->
          match j with
          | Toy.Sub ((_, t1), (_, t2), g) ->
              Some (G.Star (G.LProp (PEq (t1, t2)), g))
          | _ -> None);
    };
    {
      E.rname = "LOOP";
      prio = 10;
      heads = None;
      apply =
        (fun _ri j ->
          match j with
          | Toy.Loop (0, g) -> Some g
          | Toy.Loop (n, g) -> Some (G.Basic (Toy.Loop (n - 1, g)))
          | _ -> None);
    };
  ]

let cfg = { E.rules; tactics = [] }

let run g = E.run cfg ~env:() g

let check_ok name g =
  Alcotest.test_case name `Quick (fun () ->
      match run g with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "failed: %s" (Rc_lithium.Report.to_string e))

let check_fail name g =
  Alcotest.test_case name `Quick (fun () ->
      match run g with
      | Ok _ -> Alcotest.fail "unexpectedly succeeded"
      | Error _ -> ())

let atom c t = G.LAtom (c, t)

let engine_tests =
  [
    check_ok "true" G.True_;
    check_ok "intro then consume"
      (G.Wand (atom "a" (Num 1), G.Star (atom "a" (Num 1), G.True_)));
    check_fail "consume absent atom" (G.Star (atom "a" (Num 1), G.True_));
    check_fail "wrong type"
      (G.Wand (atom "a" (Num 1), G.Star (atom "a" (Num 2), G.True_)));
    check_ok "side condition discharged"
      (G.Star (G.LProp (PLe (Num 1, Num 2)), G.True_));
    check_fail "side condition fails"
      (G.Star (G.LProp (PLe (Num 2, Num 1)), G.True_));
    check_ok "vacuous truth from contradictory hypothesis"
      (G.Wand
         ( G.LProp (PEq (Num 1, Num 2)),
           G.Star (atom "missing" (Num 0), G.True_) ));
    check_ok "universal introduction"
      (G.All ("x", Sort.Int, fun x -> G.Star (G.LProp (PEq (x, x)), G.True_)));
    check_ok "existential via unification"
      (G.Ex ("x", Sort.Int, fun x -> G.Star (G.LProp (PEq (x, Num 7)), G.True_)));
    check_ok "evar used twice consistently"
      (G.Ex
         ( "x",
           Sort.Int,
           fun x ->
             G.Star
               ( G.LProp (PEq (x, Num 7)),
                 G.Star (G.LProp (PLe (x, Num 10)), G.True_) ) ));
    check_fail "evar used twice inconsistently"
      (G.Ex
         ( "x",
           Sort.Int,
           fun x ->
             G.Star
               ( G.LProp (PEq (x, Num 7)),
                 G.Star (G.LProp (PEq (x, Num 8)), G.True_) ) ));
    check_ok "goal-simp: ?xs ≠ [] instantiates a cons cell"
      (G.Ex
         ( "xs",
           Sort.List Sort.Int,
           fun xs ->
             G.Star (G.LProp (p_ne xs (Nil Sort.Int)), G.True_) ));
    check_ok "conjunction forks contexts"
      (G.Wand
         ( atom "a" (Num 1),
           G.AndG
             [
               (Some "left", G.Star (atom "a" (Num 1), G.True_));
               (Some "right", G.Star (atom "a" (Num 1), G.True_));
             ] ));
    check_ok "rule recursion (case 5)"
      (G.Basic (Toy.Loop (5, G.True_)));
    check_ok "subsumption through context lookup (case 6d)"
      (G.Wand (atom "c" (Add (Num 1, Num 2)), G.Star (atom "c" (Num 3), G.True_)));
    check_ok "left-goal re-association (case 6a)"
      (G.Wand
         ( atom "a" (Num 1),
           G.Wand
             ( atom "b" (Num 2),
               G.Star
                 ( G.LStar (atom "a" (Num 1), atom "b" (Num 2)),
                   G.True_ ) ) ));
    check_ok "left-existential hoisting (case 6b)"
      (G.Wand
         ( atom "a" (Num 4),
           G.Star
             ( G.LEx ("x", Sort.Int, fun x -> atom "a" x),
               G.Star (G.LProp PTrue, G.True_) ) ));
    check_ok "wand-left introduces hypotheses (case 7c)"
      (G.Wand
         ( G.LProp (PLe (nat "n", Num 5)),
           G.Star (G.LProp (PLe (nat "n", Num 6)), G.True_) ));
    check_ok "find consumes the atom"
      (G.Wand
         ( atom "a" (Num 1),
           G.Find
             {
               descr = "a";
               pred = (fun _ (c, _) -> c = "a");
               cont = (fun _ -> G.Star (atom "a" (Num 1), G.True_) |> fun _ -> G.True_);
             } ));
    check_fail "find fails when absent"
      (G.Find
         { descr = "a"; pred = (fun _ (c, _) -> c = "a"); cont = (fun _ -> G.True_) });
    check_ok "find-opt takes the absent branch"
      (G.FindOpt
         {
           descr = "a";
           pred = (fun _ (c, _) -> c = "a");
           cont =
             (function None -> G.True_ | Some _ -> G.Star (G.LProp PFalse, G.True_));
         });
  ]

let stats_tests =
  [
    Alcotest.test_case "statistics are recorded" `Quick (fun () ->
        match run (G.Basic (Toy.Loop (5, G.True_))) with
        | Ok { stats; _ } ->
            Alcotest.(check int) "rule applications" 6 stats.Rc_lithium.Stats.rule_apps;
            Alcotest.(check int)
              "distinct rules" 1
              (Rc_lithium.Stats.distinct_rules stats)
        | Error _ -> Alcotest.fail "failed");
    Alcotest.test_case "evar instantiations counted" `Quick (fun () ->
        match
          run
            (G.Ex
               ("x", Sort.Int, fun x -> G.Star (G.LProp (PEq (x, Num 1)), G.True_)))
        with
        | Ok { stats; _ } ->
            Alcotest.(check int) "evars" 1 stats.Rc_lithium.Stats.evar_insts
        | Error _ -> Alcotest.fail "failed");
    Alcotest.test_case "derivation records side conditions" `Quick (fun () ->
        (* must not be simplification-trivial, or it is discharged silently *)
        match
          run (G.Star (G.LProp (PLe (nat "n", Add (nat "n", Num 1))), G.True_))
        with
        | Ok { deriv; _ } ->
            Alcotest.(check int)
              "side conditions" 1
              (List.length (Rc_lithium.Deriv.side_conditions deriv))
        | Error _ -> Alcotest.fail "failed");
  ]

let () =
  Alcotest.run "lithium"
    [ ("engine", engine_tests); ("stats", stats_tests) ]

(* Proof-failure forensics: when a session enables forensics, every
   failure report carries a bounded derivation snapshot — the goal stack
   from the function's root goal to the stuck goal, the stuck goal's
   candidate rules with per-rule rejection reasons, the evar state and
   the trailing rule applications.

   Contracts under test, per failure kind:
   - the forensic is present and names the right stuck judgment;
   - the committed candidate's rejection reason reflects the kind
     (guard rejections read "guard failed", the committed rule carries
     the side-condition/evar/ownership explanation);
   - capture is bounded (depth caps with explicit elision counts);
   - determinism: -j1 and -j4 serialize to byte-identical JSON
     (forensics contain no wall-clock data);
   - zero-cost when off: a default session's reports have no forensics,
     and its JSON is byte-identical to a forensics-free run. *)

module Driver = Rc_frontend.Driver
module Api = Rc_session.Refinedc_api
module Report = Rc_lithium.Report

let fx_session () = Api.create_session ~case_studies:true ~forensics:true ()

let check ?session ?jobs ~file src =
  let session =
    match session with Some s -> s | None -> fx_session ()
  in
  Driver.check_source ~session ?jobs ~file src

(* The committed rule's side condition (x + 2) ≤ max_int is unprovable
   for an unbounded refinement x. *)
let unsolved_src =
  {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::returns("(x + 1) @ int<int>")]]
int bump(int n) {
  return n + 2;
}
|}

(* The existential r is pinned by nothing: the ensures side condition
   still contains the sealed evar after the heuristics. *)
let evar_stuck_src =
  {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::exists("r: int")]]
[[rc::returns("x @ int<int>")]]
[[rc::ensures("{r * r == x + x}")]]
int pick(int n) {
  return n;
}
|}

(* No typing rule covers xor: the binop bucket rejects every candidate. *)
let no_rule_src =
  {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::returns("x @ int<int>")]]
int weird(int n) {
  return n ^ 1;
}
|}

let sole_failure (t : Driver.t) : Report.t =
  match t.Driver.results with
  | [ { outcome = Error e; _ } ] -> e
  | [ { outcome = Ok _; _ } ] -> Alcotest.fail "fixture unexpectedly verified"
  | _ -> Alcotest.fail "expected exactly one function"

let forensics_of (e : Report.t) : Report.forensics =
  match e.Report.forensics with
  | Some fx -> fx
  | None -> Alcotest.fail "failure report carries no forensics"

let contains ~sub s =
  try
    ignore (Str.search_forward (Str.regexp_string sub) s 0);
    true
  with Not_found -> false

let kind_tests =
  [
    Alcotest.test_case "unsolved side condition forensic" `Quick (fun () ->
        let e = sole_failure (check ~file:"bump.c" unsolved_src) in
        Alcotest.(check string)
          "kind" "unsolved_side_condition"
          (Report.kind_label e.Report.kind);
        let fx = forensics_of e in
        Alcotest.(check bool)
          "goal stack nonempty" true
          (fx.Report.fx_goal_stack <> []);
        Alcotest.(check (option string))
          "stuck head" (Some "binop") fx.Report.fx_stuck_head;
        (* first-match-commits: the committed arithmetic rule is listed
           with the unsolved side condition as its rejection reason *)
        Alcotest.(check bool)
          "a candidate explains the unsolved side condition" true
          (List.exists
             (fun (_, reason) ->
               contains ~sub:"side condition unsolved" reason
               && contains ~sub:"solver verdict: unsolved" reason)
             fx.Report.fx_candidates);
        Alcotest.(check bool)
          "recent rules recorded" true
          (fx.Report.fx_recent_rules <> []);
        (* the human rendering includes every section header *)
        let printed = Fmt.str "%a" Report.pp_forensics fx in
        List.iter
          (fun sub ->
            Alcotest.(check bool) ("pp mentions " ^ sub) true
              (contains ~sub printed))
          [ "goal stack"; "stuck judgment head"; "candidate rules" ]);
    Alcotest.test_case "evar-stuck forensic shows the evar state" `Quick
      (fun () ->
        let e = sole_failure (check ~file:"pick.c" evar_stuck_src) in
        Alcotest.(check string)
          "kind" "evar_stuck"
          (Report.kind_label e.Report.kind);
        let fx = forensics_of e in
        Alcotest.(check bool)
          "evar section lists an uninstantiated evar" true
          (List.exists
             (fun line ->
               contains ~sub:"?r#" line && contains ~sub:"uninstantiated" line)
             fx.Report.fx_evars);
        Alcotest.(check bool)
          "a candidate explains the stuck evars" true
          (List.exists
             (fun (_, reason) -> contains ~sub:"evars" reason)
             fx.Report.fx_candidates));
    Alcotest.test_case "no-rule-applies forensic lists guard rejections"
      `Quick (fun () ->
        let e = sole_failure (check ~file:"weird.c" no_rule_src) in
        Alcotest.(check string)
          "kind" "no_rule_applies"
          (Report.kind_label e.Report.kind);
        let fx = forensics_of e in
        Alcotest.(check bool)
          "every candidate was rejected by its guard" true
          (fx.Report.fx_candidates <> []
          && List.for_all
               (fun (_, reason) -> reason = "guard failed")
               fx.Report.fx_candidates);
        Alcotest.(check (option string))
          "stuck head" (Some "binop") fx.Report.fx_stuck_head);
  ]

(* A deeply right-nested expression keeps > fxl_depth basic-goal frames
   open at the failure point, so the stack must elide its middle while
   keeping the root and the stuck frontier. *)
let deep_src =
  let rec nest n = if n = 0 then "(n ^ 1)" else "(n + " ^ nest (n - 1) ^ ")" in
  Printf.sprintf
    {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::returns("x @ int<int>")]]
int deep(int n) {
  return %s;
}
|}
    (nest 30)

let bounding_tests =
  [
    Alcotest.test_case "goal stack is depth-bounded with elision" `Quick
      (fun () ->
        let e = sole_failure (check ~file:"deep.c" deep_src) in
        let fx = forensics_of e in
        let lim = Report.default_fx_limits in
        Alcotest.(check int)
          "stack capped at fxl_depth" lim.Report.fxl_depth
          (List.length fx.Report.fx_goal_stack);
        Alcotest.(check bool)
          "elision counted" true
          (fx.Report.fx_goal_stack_elided > 0);
        (* the stuck frontier stays visible after elision *)
        Alcotest.(check bool)
          "last entry is the stuck goal" true
          (match List.rev fx.Report.fx_goal_stack with
          | last :: _ -> contains ~sub:"BINOP" last || contains ~sub:"^" last
          | [] -> false));
  ]

let json_of t = Rc_util.Jsonout.to_string (Driver.to_json ~timings:false t)

let determinism_tests =
  [
    Alcotest.test_case "forensics are byte-identical across -j" `Quick
      (fun () ->
        if not Rc_util.Pool.parallelism_available then Alcotest.skip ();
        (* one file, several failing functions, so -j4 actually forks *)
        let src =
          String.concat "\n"
            [ unsolved_src; evar_stuck_src; no_rule_src; deep_src ]
        in
        let seq = check ~session:(fx_session ()) ~jobs:1 ~file:"all.c" src in
        let par = check ~session:(fx_session ()) ~jobs:4 ~file:"all.c" src in
        Alcotest.(check string) "JSON reports" (json_of seq) (json_of par));
    Alcotest.test_case "forensics JSON block is present under --json" `Quick
      (fun () ->
        let t = check ~file:"bump.c" unsolved_src in
        let json = json_of t in
        List.iter
          (fun sub ->
            Alcotest.(check bool) ("json mentions " ^ sub) true
              (contains ~sub json))
          [
            "\"forensics\"";
            "\"goal_stack\"";
            "\"stuck_head\"";
            "\"candidates\"";
            (* satellite: the existing trail/context diagnostics are part
               of the same per-function failure record *)
            "\"trail\"";
            "\"context\"";
          ]);
  ]

let off_tests =
  [
    Alcotest.test_case "disabled forensics leave reports untouched" `Quick
      (fun () ->
        let plain () = Api.create_session ~case_studies:true () in
        let off = check ~session:(plain ()) ~file:"bump.c" unsolved_src in
        let e = sole_failure off in
        Alcotest.(check bool)
          "no forensic captured" true
          (e.Report.forensics = None);
        Alcotest.(check bool)
          "no forensics key in JSON" false
          (contains ~sub:"\"forensics\"" (json_of off));
        (* same verdict, same Figure-7 statistics, same JSON as another
           forensics-free run: the default path is unchanged *)
        let off' = check ~session:(plain ()) ~file:"bump.c" unsolved_src in
        Alcotest.(check string)
          "byte-identical to a forensics-free run" (json_of off')
          (json_of off);
        (* and forensics-on changes nothing but the forensics block:
           verdict kind and exit code agree *)
        let on = check ~session:(fx_session ()) ~file:"bump.c" unsolved_src in
        Alcotest.(check string)
          "same kind with forensics on"
          (Report.kind_label e.Report.kind)
          (Report.kind_label (sole_failure on).Report.kind);
        Alcotest.(check int)
          "same exit code" (Driver.exit_code off) (Driver.exit_code on));
    Alcotest.test_case "forensics do not change verified outcomes" `Quick
      (fun () ->
        let case_dir =
          List.find Sys.file_exists
            [
              "case_studies"; "../case_studies"; "../../case_studies";
              "../../../case_studies";
            ]
        in
        let file = Filename.concat case_dir "binary_search.c" in
        let src = In_channel.with_open_bin file In_channel.input_all in
        let off =
          check
            ~session:(Api.create_session ~case_studies:true ())
            ~file:"binary_search.c" src
        in
        let on =
          check ~session:(fx_session ()) ~file:"binary_search.c" src
        in
        Alcotest.(check string)
          "identical reports" (json_of off) (json_of on));
  ]

let () =
  Alcotest.run "forensics"
    [
      ("failure kinds", kind_tests);
      ("bounding", bounding_tests);
      ("determinism", determinism_tests);
      ("disabled", off_tests);
    ]

(** Shared scratch-space helper for the test executables.

    Every scratch directory a test asks for lives under one
    per-process directory inside the system temp dir, and the whole
    tree is removed by an [at_exit] hook — so test runs never litter
    the repository root (the old [_supcache_*] dirs) or leave orphans
    in [/tmp]. *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* [Filename.temp_dir] only exists from OCaml 5.1; temp_file + remove +
   mkdir is the portable spelling.  Lazy so the directory (and its
   cleanup hook) only materialize if a test actually asks for scratch
   space. *)
let root =
  lazy
    (let base = Filename.temp_file "rc-test-scratch" "" in
     Sys.remove base;
     Unix.mkdir base 0o700;
     at_exit (fun () -> rm_rf base);
     base)

let counter = ref 0

(** A fresh scratch-directory *path*, unique within the process; the
    caller (usually {!Rc_util.Vercache.create}) creates it. *)
let scratch_dir tag =
  incr counter;
  Filename.concat (Lazy.force root) (Printf.sprintf "%s_%d" tag !counter)

(* End-to-end pipeline tests: annotated C text → parse → elaborate →
   verify, plus interpreter cross-checks of the elaborated code. *)

open Rc_frontend
module Value = Rc_caesium.Value
module Int_type = Rc_caesium.Int_type

let case_dir =
  (* robust against being run via `dune runtest` (cwd = build dir) or
     `dune exec` (cwd = workspace root) *)
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let simple_src =
  {|
int min_int(int a, int b) { return a; }

[[rc::parameters("x: int", "y: int")]]
[[rc::args("x @ int<int>", "y @ int<int>")]]
[[rc::returns("(x <= y ? x : y) @ int<int>")]]
int imin(int a, int b) {
  if (a <= b) return a;
  return b;
}

[[rc::parameters("x: nat")]]
[[rc::args("x @ int<int>")]]
[[rc::requires("{x <= 1000}")]]
[[rc::returns("(x * (x + 1) / 2) @ int<int>")]]
int sum_to(int n) {
  int acc = 0;
  int i = 0;
  [[rc::exists("j: nat", "s: nat")]]
  [[rc::inv_vars("i: j @ int<int>")]]
  [[rc::inv_vars("acc: s @ int<int>")]]
  [[rc::constraints("{j <= x}", "{s = j * (j + 1) / 2}", "{s <= j * 1001}")]]
  while (i < n) {
    i += 1;
    acc += i;
  }
  return acc;
}
|}

let pipeline_tests =
  [
    Alcotest.test_case "parse + verify simple functions" `Quick (fun () ->
        let t = Driver.check_source ~file:"simple.c" simple_src in
        (* imin must verify *)
        List.iter
          (fun (r : Driver.check_result) ->
            if r.name = "imin" then
              match r.outcome with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "imin failed:@.%s"
                    (Rc_lithium.Report.to_string e))
          t.results);
    Alcotest.test_case "interpreter agrees with spec on imin" `Quick
      (fun () ->
        let t = Driver.check_source ~file:"simple.c" simple_src in
        match
          Driver.run t "imin"
            [ Value.of_int Int_type.i32 7; Value.of_int Int_type.i32 3 ]
        with
        | Rc_caesium.Eval.Finished (Some v) ->
            Alcotest.(check (option int))
              "min" (Some 3)
              (Value.to_int Int_type.i32 v)
        | _ -> Alcotest.fail "expected termination");
  ]

let mem_alloc_tests =
  [
    Alcotest.test_case "mem_alloc.c verifies (both variants)" `Quick
      (fun () ->
        let t =
          Driver.check_source ~file:"mem_alloc.c"
            (read (Filename.concat case_dir "mem_alloc.c"))
        in
        match Driver.errors t with
        | [] -> ()
        | (fn, e) :: _ ->
            Alcotest.failf "%s failed:@.%s" fn (Rc_lithium.Report.to_string e));
    Alcotest.test_case "buggy spec (n < a) fails with located error" `Quick
      (fun () ->
        let src = read (Filename.concat case_dir "mem_alloc.c") in
        (* §2.1: replace n <= a by n < a in the returns annotation *)
        let buggy =
          Str.global_replace (Str.regexp_string "{n <= a} @ optional")
            "{n < a} @ optional" src
        in
        let t = Driver.check_source ~file:"mem_alloc_bug.c" buggy in
        match Driver.errors t with
        | [] -> Alcotest.fail "buggy spec verified"
        | (_, e) :: _ ->
            (* the error should point into the C source *)
            Alcotest.(check bool)
              "has location" true
              (e.Rc_lithium.Report.loc <> None));
  ]

let switch_src = {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::returns("(x = 1 ? 10 : (x = 2 ? 20 : 0)) @ int<int>")]]
int classify(int v) {
  switch (v) {
    case 1:
      return 10;
    case 2:
      return 20;
    default:
      return 0;
  }
}
|}

let while_break_src = {|
[[rc::parameters("x: nat")]]
[[rc::args("x @ int<int>")]]
[[rc::requires("{x <= 100}")]]
[[rc::returns("(min(x, 10)) @ int<int>")]]
int clamp10(int v) {
  int i = 0;
  [[rc::exists("j: nat")]]
  [[rc::inv_vars("i: j @ int<int>")]]
  [[rc::constraints("{j <= x}", "{j <= 10}")]]
  while (i < v) {
    if (i >= 10)
      break;
    i = i + 1;
  }
  return i;
}
|}

let more_tests =
  [
    Alcotest.test_case "switch statements verify" `Quick (fun () ->
        match
          (Driver.check_source ~file:"switch.c" switch_src).results
        with
        | [ { outcome = Ok _; _ } ] -> ()
        | [ { outcome = Error e; _ } ] ->
            Alcotest.failf "classify failed:@.%s"
              (Rc_lithium.Report.to_string e)
        | _ -> Alcotest.fail "unexpected results");
    Alcotest.test_case "switch executes correctly" `Quick (fun () ->
        let t = Driver.check_source ~file:"switch.c" switch_src in
        List.iter
          (fun (input, expect) ->
            match Driver.run t "classify" [ Value.of_int Int_type.i32 input ] with
            | Rc_caesium.Eval.Finished (Some v) ->
                Alcotest.(check (option int))
                  (string_of_int input) (Some expect)
                  (Value.to_int Int_type.i32 v)
            | _ -> Alcotest.fail "expected termination")
          [ (1, 10); (2, 20); (3, 0); (-5, 0) ]);
    Alcotest.test_case "break with loop invariant verifies" `Quick (fun () ->
        match
          (Driver.check_source ~file:"clamp.c" while_break_src).results
        with
        | [ { outcome = Ok _; _ } ] -> ()
        | [ { outcome = Error e; _ } ] ->
            Alcotest.failf "clamp10 failed:@.%s"
              (Rc_lithium.Report.to_string e)
        | _ -> Alcotest.fail "unexpected results");
    Alcotest.test_case "escape warning fires" `Quick (fun () ->
        let t =
          Driver.check_source ~file:"escape.c"
            "int* bad(void) { int x = 5; return &x; }"
        in
        Alcotest.(check bool)
          "has escape warning" true
          (List.exists
             (fun (d : Rc_util.Diagnostic.t) ->
               d.code = "RC-W002"
               &&
               try
                 ignore
                   (Str.search_forward (Str.regexp_string "escape") d.message
                      0);
                 true
               with Not_found -> false)
             t.elaborated.Rc_frontend.Elab.warnings));
  ]

(* --------------------------------------------------------------- *)
(* Error paths: malformed input in every frontend stage must yield   *)
(* a located Frontend_error, never a crash                           *)
(* --------------------------------------------------------------- *)

let error_path_tests =
  let expect_located name ~category src =
    Alcotest.test_case name `Quick (fun () ->
        match Driver.check_source ~file:"err.c" src with
        | exception Driver.Frontend_error msg ->
            let contains what =
              try
                ignore (Str.search_forward (Str.regexp_string what) msg 0);
                true
              with Not_found -> false
            in
            if not (contains category) then
              Alcotest.failf "expected a %s error, got: %s" category msg;
            (* the message must point into the source: "err.c:LINE:..." *)
            if not (Str.string_match (Str.regexp ".*err\\.c:[0-9]+:") msg 0)
            then Alcotest.failf "no source location in: %s" msg
        | exception e ->
            Alcotest.failf "expected Frontend_error, got %s"
              (Printexc.to_string e)
        | _ -> Alcotest.fail "malformed input verified")
  in
  [
    expect_located "parse error is located" ~category:"parse error"
      "int f(int x { return x; }";
    expect_located "lexical error is located" ~category:"lexical error"
      "int f(void) { return `1; }";
    expect_located "unterminated comment is located" ~category:"lexical error"
      "int f(void) { return 0; } /* oops";
    expect_located "elaboration error is located"
      ~category:"elaboration error" "int f(void) { return g(1); }";
    expect_located "spec error is located" ~category:"specification error"
      {|
[[rc::parameters("x: int")]]
[[rc::args("x @@@ bad")]]
[[rc::returns("x @ int<int>")]]
int id(int a) { return a; }
|};
    expect_located "spec error in loop annotation is located"
      ~category:"specification error"
      {|
[[rc::parameters("x: nat")]]
[[rc::args("x @ int<int>")]]
[[rc::returns("x @ int<int>")]]
int spin(int a) {
  [[rc::exists("j: notasort!!")]]
  [[rc::constraints("{j <= x}")]]
  while (a > 0) { a -= 1; }
  return a;
}
|};
  ]

let () =
  Alcotest.run "frontend"
    [
      ("pipeline", pipeline_tests);
      ("mem_alloc", mem_alloc_tests);
      ("more-c-features", more_tests);
      ("error-paths", error_path_tests);
    ]

(* The pre-verification static-analysis subsystem (lib/analysis):
   - the constant-folding CFG construction and the worklist dataflow
     framework, on hand-built Caesium functions;
   - one positive and one negative fixture per lint pass, driven
     end-to-end through parse → elaborate → lint;
   - rule-set sanity on purpose-built bad rule sets and on the stock
     session (which must be clean);
   - the whole §7 case-study corpus must lint clean, and enabling the
     lint pre-pass must not change any study's verdicts or statistics. *)

module Syntax = Rc_caesium.Syntax
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
module Cfg = Rc_analysis.Cfg
module Dataflow = Rc_analysis.Dataflow
module Lint = Rc_analysis.Lint
module Diagnostic = Rc_util.Diagnostic
module Driver = Rc_frontend.Driver
module Api = Rc_session.Refinedc_api

let i32 = Int_type.i32
let cint n = Syntax.IntConst (n, i32)
let use x = Syntax.Use { atomic = false; layout = Layout.Int i32; arg = Syntax.VarLoc x }

let assign x e =
  Syntax.Assign
    { atomic = false; layout = Layout.Int i32; lhs = Syntax.VarLoc x; rhs = e }

let mk_func ?(args = []) ?(locals = []) ?(ret = Layout.Int i32) blocks entry =
  {
    Syntax.fname = "f";
    args;
    locals;
    ret_layout = ret;
    blocks;
    entry;
  }

(* --------------------------------------------------------------- *)
(* CFG construction                                                  *)
(* --------------------------------------------------------------- *)

let cfg_tests =
  [
    Alcotest.test_case "constant CondGoto folds to one edge" `Quick (fun () ->
        (* while (1): the false edge must not count as reachable *)
        let f =
          mk_func ~ret:Layout.Void
            [
              ( "entry",
                {
                  Syntax.stmts = [];
                  term =
                    Syntax.CondGoto
                      {
                        ot = Syntax.OInt i32;
                        cond = cint 1;
                        if_true = "body";
                        if_false = "exit";
                      };
                } );
              ("body", { Syntax.stmts = []; term = Syntax.Goto "entry" });
              ("exit", { Syntax.stmts = []; term = Syntax.Return None });
            ]
            "entry"
        in
        let cfg = Cfg.build f in
        Alcotest.(check (list string))
          "succs of entry" [ "body" ]
          (Cfg.succs_of cfg "entry");
        Alcotest.(check bool) "exit unreachable" false
          (Cfg.is_reachable cfg "exit");
        Alcotest.(check (list string))
          "unreachable blocks" [ "exit" ]
          (List.map fst (Cfg.unreachable_blocks cfg)));
    Alcotest.test_case "constant Switch folds to the matching case" `Quick
      (fun () ->
        let term cases default =
          Syntax.Switch
            { ot = Syntax.OInt i32; scrut = cint 2; cases; default }
        in
        let blocks t =
          [
            ("entry", { Syntax.stmts = []; term = t });
            ("a", { Syntax.stmts = []; term = Syntax.Return (Some (cint 0)) });
            ("b", { Syntax.stmts = []; term = Syntax.Return (Some (cint 0)) });
            ("d", { Syntax.stmts = []; term = Syntax.Return (Some (cint 0)) });
          ]
        in
        let cfg =
          Cfg.build (mk_func (blocks (term [ (1, "a"); (2, "b") ] "d")) "entry")
        in
        Alcotest.(check (list string))
          "matching case" [ "b" ]
          (Cfg.succs_of cfg "entry");
        (* no case matches: only the default is a successor *)
        let cfg = Cfg.build (mk_func (blocks (term [ (1, "a") ] "d")) "entry") in
        Alcotest.(check (list string))
          "default" [ "d" ]
          (Cfg.succs_of cfg "entry"));
    Alcotest.test_case "reachable is in reverse postorder" `Quick (fun () ->
        let goto l = { Syntax.stmts = []; term = Syntax.Goto l } in
        let f =
          mk_func
            [
              ("entry", goto "mid");
              ("mid", goto "last");
              ("last", { Syntax.stmts = []; term = Syntax.Return None });
              ("island", goto "island");
            ]
            "entry"
        in
        let cfg = Cfg.build f in
        Alcotest.(check (list string))
          "order" [ "entry"; "mid"; "last" ] cfg.Cfg.reachable;
        Alcotest.(check (list string))
          "preds of last" [ "mid" ]
          (Cfg.preds_of cfg "last"));
  ]

(* --------------------------------------------------------------- *)
(* Worklist dataflow                                                 *)
(* --------------------------------------------------------------- *)

let dataflow_tests =
  [
    Alcotest.test_case "must-analysis meets over a diamond" `Quick (fun () ->
        (* entry defines x; only the left branch defines y; the join's
           input must be {x} — y is not definite *)
        let cond l r =
          Syntax.CondGoto
            { ot = Syntax.OInt i32; cond = use "c"; if_true = l; if_false = r }
        in
        let f =
          mk_func ~locals:[ ("x", Layout.Int i32); ("y", Layout.Int i32) ]
            [
              ("entry", { Syntax.stmts = [ assign "x" (cint 1) ]; term = cond "l" "r" });
              ("l", { Syntax.stmts = [ assign "y" (cint 2) ]; term = Syntax.Goto "join" });
              ("r", { Syntax.stmts = []; term = Syntax.Goto "join" });
              ("join", { Syntax.stmts = []; term = Syntax.Return (Some (use "x")) });
            ]
            "entry"
        in
        let cfg = Cfg.build f in
        let transfer _ (b : Syntax.block) st =
          List.fold_left
            (fun st s ->
              match s with
              | Syntax.Assign { lhs = Syntax.VarLoc x; _ } ->
                  Dataflow.StringSet.add x st
              | _ -> st)
            st b.Syntax.stmts
        in
        let inputs =
          Dataflow.Must_vars.run cfg ~entry:Dataflow.StringSet.empty ~transfer
        in
        let at l = Dataflow.StringSet.elements (List.assoc l inputs) in
        Alcotest.(check (list string)) "entry input" [] (at "entry");
        Alcotest.(check (list string)) "left input" [ "x" ] (at "l");
        Alcotest.(check (list string)) "join input" [ "x" ] (at "join"));
    Alcotest.test_case "loop reaches a fixpoint" `Quick (fun () ->
        (* back edge carries {x}; the loop head's input must stabilize
           at the meet of the entry edge ({x}) and the back edge *)
        let cond l r =
          Syntax.CondGoto
            { ot = Syntax.OInt i32; cond = use "c"; if_true = l; if_false = r }
        in
        let f =
          mk_func ~locals:[ ("x", Layout.Int i32); ("y", Layout.Int i32) ]
            [
              ("entry", { Syntax.stmts = [ assign "x" (cint 0) ]; term = Syntax.Goto "head" });
              ("head", { Syntax.stmts = []; term = cond "body" "exit" });
              ("body", { Syntax.stmts = [ assign "y" (cint 1) ]; term = Syntax.Goto "head" });
              ("exit", { Syntax.stmts = []; term = Syntax.Return (Some (use "x")) });
            ]
            "entry"
        in
        let cfg = Cfg.build f in
        let transfer _ (b : Syntax.block) st =
          List.fold_left
            (fun st s ->
              match s with
              | Syntax.Assign { lhs = Syntax.VarLoc x; _ } ->
                  Dataflow.StringSet.add x st
              | _ -> st)
            st b.Syntax.stmts
        in
        let inputs =
          Dataflow.Must_vars.run cfg ~entry:Dataflow.StringSet.empty ~transfer
        in
        let at l = Dataflow.StringSet.elements (List.assoc l inputs) in
        (* y is defined on the back edge but not the entry edge: must
           not be definite at the head *)
        Alcotest.(check (list string)) "head input" [ "x" ] (at "head");
        Alcotest.(check (list string)) "exit input" [ "x" ] (at "exit"));
  ]

(* --------------------------------------------------------------- *)
(* Lint passes, end to end on source fixtures                        *)
(* --------------------------------------------------------------- *)

let session () = Api.create_session ~case_studies:true ()

let lint ?passes src =
  let session = session () in
  let elaborated =
    Driver.parse_and_elab ~session ~file:"lint_test.c" src
  in
  Driver.lint_elaborated ?passes ~session ~file:"lint_test.c" elaborated

let has_code c ds =
  List.exists (fun (d : Diagnostic.t) -> d.code = c) ds

let count_code c ds =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.code = c) ds)

let init_pos =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::returns("int<int>")]]
int f(int n) {
  int x;
  if (n > 0) { x = 1; }
  return x;
}
|}

let init_neg =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::returns("int<int>")]]
int f(int n) {
  int x = 0;
  if (n > 0) { x = 1; }
  return x;
}
|}

let deref_pos =
  {|
[[rc::parameters("p: loc")]]
[[rc::args("p @ ptr")]]
[[rc::returns("int<int>")]]
int f(int* q) {
  return *q;
}
|}

let deref_neg =
  {|
[[rc::parameters("n: int")]]
[[rc::args("&own<n @ int<int>>")]]
[[rc::returns("n @ int<int>")]]
int f(int* q) {
  return *q;
}
|}

let reach_pos =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::returns("int<int>")]]
int f(int n) {
  if (n > 0) { return 1; } else { return 2; }
  n = 3;
  return n;
}
|}

let missing_return_pos =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::returns("int<int>")]]
int f(int n) {
  if (n > 0) { return 1; }
}
|}

(* the spinlock shape: an infinite loop that returns from its body in a
   void function — the synthesized loop-exit block must not be flagged *)
let reach_neg =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
void f(int n) {
  while (1) {
    if (n > 0)
      return;
  }
}
|}

let unused_param_pos =
  {|
[[rc::parameters("n: int", "m: int")]]
[[rc::args("n @ int<int>")]]
[[rc::returns("n @ int<int>")]]
int f(int n) { return n; }
|}

(* a parameter used *only* in a loop invariant is used *)
let unused_param_neg =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::returns("int<int>")]]
int f(int n) {
  int i = 0;
  [[rc::inv_vars("i: int<int>")]]
  [[rc::constraints("{0 <= n}")]]
  while (i < n) { i = i + 1; }
  return i;
}
|}

let dup_annot_pos =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::requires("{0 < n}", "{0 < n}")]]
[[rc::returns("n @ int<int>")]]
int f(int n) { return n; }
|}

let unsat_pre_pos =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::requires("{n < 0}", "{0 < n}")]]
[[rc::returns("n @ int<int>")]]
int f(int n) { return n; }
|}

let unsat_pre_neg =
  {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::requires("{0 < n}", "{n < 10}")]]
[[rc::returns("n @ int<int>")]]
int f(int n) { return n; }
|}

let pass_tests =
  [
    Alcotest.test_case "init: guarded write flags the read" `Quick (fun () ->
        let ds = lint init_pos in
        Alcotest.(check bool) "RC-L001 fires" true (has_code "RC-L001" ds);
        Alcotest.(check int) "exactly once" 1 (count_code "RC-L001" ds));
    Alcotest.test_case "init: initialized local is clean" `Quick (fun () ->
        Alcotest.(check bool)
          "no RC-L001" false
          (has_code "RC-L001" (lint init_neg)));
    Alcotest.test_case "deref: ownership-less pointer arg is hinted" `Quick
      (fun () ->
        let ds = lint deref_pos in
        Alcotest.(check bool) "RC-L002 fires" true (has_code "RC-L002" ds);
        (* a hint, not a problem: the corpus gate ignores it *)
        Alcotest.(check bool)
          "not a problem" false
          (List.exists Diagnostic.is_problem
             (List.filter (fun (d : Diagnostic.t) -> d.code = "RC-L002") ds)));
    Alcotest.test_case "deref: owned pointer arg is clean" `Quick (fun () ->
        Alcotest.(check bool)
          "no RC-L002" false
          (has_code "RC-L002" (lint deref_neg)));
    Alcotest.test_case "reach: code after if/else-return is dead" `Quick
      (fun () ->
        Alcotest.(check bool)
          "RC-L003 fires" true
          (has_code "RC-L003" (lint reach_pos)));
    Alcotest.test_case "reach: missing return on a path" `Quick (fun () ->
        Alcotest.(check bool)
          "RC-L004 fires" true
          (has_code "RC-L004" (lint missing_return_pos)));
    Alcotest.test_case "reach: while(1) exit block is not flagged" `Quick
      (fun () ->
        let ds = lint reach_neg in
        Alcotest.(check bool) "no RC-L003" false (has_code "RC-L003" ds);
        Alcotest.(check bool) "no RC-L004" false (has_code "RC-L004" ds));
    Alcotest.test_case "spec: unused parameter" `Quick (fun () ->
        let ds = lint unused_param_pos in
        Alcotest.(check bool) "RC-L010 fires" true (has_code "RC-L010" ds);
        Alcotest.(check bool)
          "message names m" true
          (List.exists
             (fun (d : Diagnostic.t) ->
               d.code = "RC-L010"
               &&
               try
                 ignore
                   (Str.search_forward (Str.regexp_string "'m'") d.message 0);
                 true
               with Not_found -> false)
             ds));
    Alcotest.test_case "spec: invariant-only use counts as used" `Quick
      (fun () ->
        Alcotest.(check bool)
          "no RC-L010" false
          (has_code "RC-L010" (lint unused_param_neg)));
    Alcotest.test_case "spec: duplicate precondition" `Quick (fun () ->
        Alcotest.(check bool)
          "RC-L011 fires" true
          (has_code "RC-L011" (lint dup_annot_pos)));
    Alcotest.test_case "spec: unsatisfiable precondition" `Quick (fun () ->
        Alcotest.(check bool)
          "RC-L012 fires" true
          (has_code "RC-L012" (lint unsat_pre_pos)));
    Alcotest.test_case "spec: satisfiable precondition is clean" `Quick
      (fun () ->
        Alcotest.(check bool)
          "no RC-L012" false
          (has_code "RC-L012" (lint unsat_pre_neg)));
    Alcotest.test_case "unspecified function gets a note" `Quick (fun () ->
        let ds = lint "int plain(int n) { return n; }" in
        Alcotest.(check bool) "RC-L014 fires" true (has_code "RC-L014" ds);
        Alcotest.(check bool)
          "note, not a problem" false
          (List.exists Diagnostic.is_problem ds));
    Alcotest.test_case "pass selection runs only the named pass" `Quick
      (fun () ->
        let ds = lint ~passes:[ "reach" ] init_pos in
        Alcotest.(check bool) "no RC-L001" false (has_code "RC-L001" ds));
    Alcotest.test_case "unknown pass name raises" `Quick (fun () ->
        match lint ~passes:[ "bogus" ] init_pos with
        | _ -> Alcotest.fail "expected Unknown_pass"
        | exception Lint.Unknown_pass p ->
            Alcotest.(check string) "name" "bogus" p);
  ]

(* --------------------------------------------------------------- *)
(* Rule-set sanity                                                   *)
(* --------------------------------------------------------------- *)

let rule name prio heads =
  { Rc_refinedc.Lang.E.rname = name; prio; heads; apply = (fun _ _ -> None) }

let rules_tests =
  [
    Alcotest.test_case "stock session is clean" `Quick (fun () ->
        Alcotest.(check (list string))
          "no findings" []
          (List.map
             (fun (d : Diagnostic.t) -> d.message)
             (Rc_analysis.Pass_rules.run (session ()))));
    Alcotest.test_case "unknown head is a dead rule" `Quick (fun () ->
        let s =
          Api.create_session ~rules:[ rule "T-TYPO" 900 (Some [ "exprs" ]) ] ()
        in
        let ds = Rc_analysis.Pass_rules.run s in
        Alcotest.(check int) "one finding" 1 (count_code "RC-L021" ds));
    Alcotest.test_case "empty head list is a dead rule" `Quick (fun () ->
        let s = Api.create_session ~rules:[ rule "T-EMPTY" 900 (Some []) ] () in
        Alcotest.(check int) "one finding" 1
          (count_code "RC-L021" (Rc_analysis.Pass_rules.run s)));
    Alcotest.test_case "duplicate rule name" `Quick (fun () ->
        let s =
          Api.create_session
            ~rules:
              [
                rule "T-DUP" 900 (Some [ "expr" ]);
                rule "T-DUP" 901 (Some [ "stmt" ]);
              ]
            ()
        in
        Alcotest.(check int) "one finding" 1
          (count_code "RC-L020" (Rc_analysis.Pass_rules.run s)));
    Alcotest.test_case "equal priority in one bucket" `Quick (fun () ->
        let s =
          Api.create_session
            ~rules:
              [
                rule "T-A" 900 (Some [ "expr" ]);
                rule "T-B" 900 (Some [ "expr" ]);
              ]
            ()
        in
        Alcotest.(check int) "one finding" 1
          (count_code "RC-L022" (Rc_analysis.Pass_rules.run s)));
  ]

(* --------------------------------------------------------------- *)
(* Corpus: clean lints, unchanged verdicts                           *)
(* --------------------------------------------------------------- *)

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let corpus =
  [
    "linked_list.c"; "queue.c"; "binary_search.c"; "talloc.c";
    "page_alloc.c"; "bst_layered.c"; "bst_direct.c"; "hashmap.c";
    "mpool.c"; "spinlock.c"; "barrier.c";
  ]

let corpus_tests =
  List.map
    (fun file ->
      Alcotest.test_case (file ^ " lints clean") `Quick (fun () ->
          let path = Filename.concat case_dir file in
          let session = session () in
          let elaborated =
            Driver.parse_and_elab ~session ~file:path
              (In_channel.with_open_bin path In_channel.input_all)
          in
          let ds = Driver.lint_elaborated ~session ~file:path elaborated in
          Alcotest.(check (list string))
            "no problems" []
            (List.filter_map
               (fun (d : Diagnostic.t) ->
                 if Diagnostic.is_problem d then
                   Some (Diagnostic.to_string d)
                 else None)
               ds)))
    corpus

(* the stress-corpus generators: every family must survive the full
   lint registry (all passes, including the concurrency ones) without
   reporting a problem — the generated programs verify, so any problem
   diagnostic would be a false positive at generator scale *)
let stress_corpus_tests =
  [
    Alcotest.test_case "stress corpus lints clean under all passes" `Slow
      (fun () ->
        List.iter
          (fun (p : Rc_benchgen.Corpus.program) ->
            let session = session () in
            let elaborated =
              Driver.parse_and_elab ~session ~file:p.p_name p.p_src
            in
            let ds =
              Driver.lint_elaborated ~session ~file:p.p_name elaborated
            in
            Alcotest.(check (list string))
              (p.p_name ^ " no problems")
              []
              (List.filter_map
                 (fun (d : Diagnostic.t) ->
                   if Diagnostic.is_problem d then
                     Some (Diagnostic.to_string d)
                   else None)
                 ds))
          (Rc_benchgen.Corpus.stress_corpus ~scale:1));
    Alcotest.test_case "race diagnostics identical under -j 1 and -j 4"
      `Slow (fun () ->
        let src =
          Rc_benchgen.Corpus.lock_farm ~functions:3 ~racy:2 ~hoisted:1 ()
        in
        let diags jobs =
          let t =
            Driver.check_source ~session:(session ()) ~jobs
              ~file:"lock_farm_jobs.c" src
          in
          List.map Diagnostic.to_string t.Driver.diagnostics
        in
        let d1 = diags 1 in
        Alcotest.(check bool) "RC-L030 present" true
          (List.exists
             (fun s ->
               Str.string_match (Str.regexp ".*RC-L030.*") s 0)
             d1);
        Alcotest.(check (list string)) "byte-identical" d1 (diags 4));
  ]

let verdict_tests =
  [
    Alcotest.test_case "verdicts unchanged by linting" `Quick (fun () ->
        let outcome (t : Driver.t) =
          List.map
            (fun (r : Driver.check_result) ->
              match r.outcome with
              | Ok res ->
                  Fmt.str "%s:ok:%d" r.name
                    res.Rc_refinedc.Lang.E.stats.Rc_lithium.Stats.rule_apps
              | Error e ->
                  Fmt.str "%s:error:%s" r.name
                    (Rc_lithium.Report.to_string e))
            t.Driver.results
        in
        List.iter
          (fun file ->
            let path = Filename.concat case_dir file in
            let on = Driver.check_file ~session:(session ()) path in
            let off =
              Driver.check_file
                ~session:
                  (Rc_refinedc.Session.with_lint (session ())
                     {
                       Rc_refinedc.Session.l_enabled = false;
                       l_passes = None;
                       l_werror = false;
                     })
                path
            in
            Alcotest.(check (list string))
              (file ^ " outcomes") (outcome off) (outcome on);
            Alcotest.(check int)
              (file ^ " exit code")
              (Driver.exit_code off) (Driver.exit_code on))
          [ "binary_search.c"; "spinlock.c"; "linked_list.c" ]);
  ]

(* --------------------------------------------------------------- *)
(* Diagnostic type                                                   *)
(* --------------------------------------------------------------- *)

let diagnostic_tests =
  [
    Alcotest.test_case "sort orders by file, loc, code and dedups" `Quick
      (fun () ->
        let loc line =
          Rc_util.Srcloc.make ~file:"a.c" ~start_line:line ~start_col:1
            ~end_line:line ~end_col:2
        in
        let d code line = Diagnostic.make ~code ~loc:(loc line) "m" in
        let ds = [ d "RC-L003" 5; d "RC-L001" 2; d "RC-L001" 2; d "RC-L002" 2 ] in
        let sorted = Diagnostic.sort ds in
        Alcotest.(check (list string))
          "order and dedup"
          [ "RC-L001"; "RC-L002"; "RC-L003" ]
          (List.map (fun (d : Diagnostic.t) -> d.code) sorted);
        Alcotest.(check bool) "is_sorted" true (Diagnostic.is_sorted sorted));
    Alcotest.test_case "severity ranks errors first" `Quick (fun () ->
        Alcotest.(check bool)
          "error < warning" true
          (Diagnostic.severity_rank Diagnostic.Error
          < Diagnostic.severity_rank Diagnostic.Warning);
        Alcotest.(check bool) "error is a problem" true
          (Diagnostic.is_problem
             (Diagnostic.make ~severity:Diagnostic.Error ~code:"X"
                ~loc:Rc_util.Srcloc.dummy "m"));
        Alcotest.(check bool) "hint is not" false
          (Diagnostic.is_problem
             (Diagnostic.make ~severity:Diagnostic.Hint ~code:"X"
                ~loc:Rc_util.Srcloc.dummy "m")));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("cfg", cfg_tests);
      ("dataflow", dataflow_tests);
      ("passes", pass_tests);
      ("rules", rules_tests);
      ("diagnostic", diagnostic_tests);
      ("corpus", corpus_tests);
      ("stress_corpus", stress_corpus_tests);
      ("verdicts", verdict_tests);
    ]

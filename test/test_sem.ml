(* Tests for the semantic-soundness harness itself: the type-directed
   generator produces inhabitants of the types it claims to (values
   decode, constraints hold), and the harness actually catches unsound
   code — a function whose behaviour violates its (deliberately
   unverified) specification's implicit safety must be reported. *)

open Rc_pure
open Rc_pure.Term
open Rc_refinedc.Rtype
module Sem = Rc_sem.Semtest
module Caesium = Rc_caesium
module Int_type = Rc_caesium.Int_type
module Value = Rc_caesium.Value
module Heap = Rc_caesium.Heap
module Syntax = Rc_caesium.Syntax

let session = Rc_studies.Studies.session ()

let rng = Random.State.make [| 11 |]

(* a fresh generation context per test: the session's types, no
   function-pointer impls, fresh binder counter *)
let gx () =
  {
    Sem.g_rng = rng;
    g_tenv = session.Rc_refinedc.Session.tenv;
    g_impls = [];
    g_qc = ref 0;
  }

let gen_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "integers satisfy their refinement" (fun () ->
        let h = Heap.create () in
        let va = ref [ ("n", Sem.CInt 7) ] in
        let v = Sem.gen_arg (gx ()) h va (TInt (Int_type.i32, nat "n")) in
        Alcotest.(check (option int)) "value" (Some 7)
          (Value.to_int Int_type.i32 v));
    t "own pointers allocate initialized pointees" (fun () ->
        let h = Heap.create () in
        let va = ref [ ("n", Sem.CInt 5) ] in
        let v =
          Sem.gen_arg (gx ()) h va
            (TOwn (Some (Var ("p", Sort.Loc)), TInt (Int_type.i32, nat "n")))
        in
        match Value.to_loc v with
        | Some l ->
            Alcotest.(check (option int)) "pointee" (Some 5)
              (Value.to_int Int_type.i32 (Heap.load h l 4));
            (* the location parameter was bound by the allocation *)
            Alcotest.(check bool) "p bound" true (List.mem_assoc "p" !va)
        | None -> Alcotest.fail "expected a pointer");
    t "structs are laid out field by field" (fun () ->
        let sl =
          Caesium.Layout.mk_struct "s"
            [ ("a", Caesium.Layout.Int Int_type.i32);
              ("b", Caesium.Layout.Int Int_type.u64) ]
        in
        let h = Heap.create () in
        let va = ref [] in
        let l = Heap.alloc h 16 in
        Sem.gen_at (gx ()) h va
          (TStruct (sl, [ TInt (Int_type.i32, Num 3); TInt (Int_type.u64, Num 9) ]))
          l;
        Alcotest.(check (option int)) "a" (Some 3)
          (Value.to_int Int_type.i32 (Heap.load h l 4));
        Alcotest.(check (option int)) "b" (Some 9)
          (Value.to_int Int_type.u64 (Heap.load h (Caesium.Loc.shift l 8) 8)));
    t "constraint-directed witnesses solve list decompositions" (fun () ->
        let h = Heap.create () in
        let va = ref [ ("xs", Sem.CList [ 4; 5; 6 ]) ] in
        (* ∃x tl. {… | xs = x :: tl} *)
        let ty =
          TExists
            ( "x",
              Sort.Int,
              fun x ->
                TExists
                  ( "tl",
                    Sort.List Sort.Int,
                    fun tl ->
                      TConstr
                        ( TInt (Int_type.i32, x),
                          PEq (Var ("xs", Sort.List Sort.Int), Cons (x, tl)) )
                  ) )
        in
        let l = Heap.alloc h 4 in
        Sem.gen_at (gx ()) h va ty l;
        Alcotest.(check (option int)) "head" (Some 4)
          (Value.to_int Int_type.i32 (Heap.load h l 4)));
    t "unsatisfiable constraints are reported" (fun () ->
        let h = Heap.create () in
        let va = ref [] in
        match
          Sem.gen_at (gx ()) h va
            (TConstr (TInt (Int_type.i32, Num 1), PEq (Num 1, Num 2)))
            (Heap.alloc h 4)
        with
        | () -> Alcotest.fail "expected Cannot_generate"
        | exception Sem.Cannot_generate _ -> ());
  ]

(* A function whose *body* divides by its argument, with a spec that does
   not exclude zero: the harness must find the UB. *)
let div_src = {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
int half_of_100(int d) {
  return 100 / d;
}
|}

let harness_tests =
  [
    Alcotest.test_case "the harness catches division by zero" `Quick
      (fun () ->
        (* not verified (and indeed unverifiable: / requires d ≠ 0);
           we run the harness directly on the unproved spec *)
        let e =
          Rc_frontend.Driver.parse_and_elab ~session ~file:"div.c" div_src
        in
        let spec =
          (List.hd e.Rc_frontend.Elab.to_check).Rc_refinedc.Typecheck.spec
        in
        match
          Sem.check_fn ~runs:2000 ~session e.Rc_frontend.Elab.program spec
        with
        | Sem.Ub_found _ -> ()
        | Sem.Passed _ -> Alcotest.fail "UB not found"
        | Sem.Skipped why -> Alcotest.failf "skipped: %s" why);
    Alcotest.test_case "the type checker rejects the division" `Quick
      (fun () ->
        let t =
          Rc_frontend.Driver.check_source ~session ~file:"div.c" div_src
        in
        Alcotest.(check bool)
          "rejected" false
          (Rc_frontend.Driver.errors t = []));
  ]

let () =
  Alcotest.run "sem" [ ("generator", gen_tests); ("harness", harness_tests) ]

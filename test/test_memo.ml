(* The engine-speed features must be semantically invisible: goal
   interning, within-run subgoal memoization ([--memo]) and
   profile-guided dispatch ([--pgo]) may change wall-clock time and the
   memo counters, but never verdicts, Figure-7 statistics, diagnostics,
   exit codes or the [--json] report.  These tests pin that equivalence
   over the full case-study corpus and a sample of the generated stress
   corpus, plus the interning primitives themselves. *)

module Driver = Rc_frontend.Driver
module Stats = Rc_lithium.Stats
module Goal = Rc_lithium.Goal
module Session = Rc_refinedc.Session
module Corpus = Rc_benchgen.Corpus

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let corpus_files =
  [
    "linked_list.c"; "queue.c"; "binary_search.c"; "talloc.c";
    "page_alloc.c"; "bst_layered.c"; "bst_direct.c"; "hashmap.c";
    "mpool.c"; "spinlock.c"; "barrier.c";
  ]

let memo_on = { Session.default_memo with Session.mm_enabled = true }

let studies_session ?(memo = false) () =
  let s = Rc_studies.Studies.session () in
  if memo then Session.with_memo s memo_on else s

let plain_session ?(memo = false) () =
  let s = Rc_session.Refinedc_api.create_session () in
  if memo then Session.with_memo s memo_on else s

let json t = Rc_util.Jsonout.to_string (Driver.to_json ~timings:false t)

(* ------------------------------------------------------------------ *)
(* Interning primitives                                                *)
(* ------------------------------------------------------------------ *)

let test_intern_roundtrip () =
  let t = Goal.Intern.create ~expected:2 () in
  let keys = List.init 100 (fun i -> Printf.sprintf "goal<%d>" i) in
  let ids = List.map (Goal.Intern.id t) keys in
  (* dense ids, in first-seen order *)
  Alcotest.(check (list int)) "dense ids" (List.init 100 Fun.id) ids;
  (* interning again is stable *)
  Alcotest.(check (list int)) "stable" ids (List.map (Goal.Intern.id t) keys);
  (* names round-trip *)
  List.iter2
    (fun k i ->
      Alcotest.(check string) "name round-trip" k (Goal.Intern.name t i))
    keys ids;
  Alcotest.(check int) "size" 100 (Goal.Intern.size t);
  Alcotest.(check bool) "mem" true (Goal.Intern.mem t "goal<42>");
  Alcotest.(check bool) "not mem" false (Goal.Intern.mem t "goal<100>")

let test_intern_bounds () =
  let t = Goal.Intern.create () in
  ignore (Goal.Intern.id t "only");
  Alcotest.check_raises "out of range" (Invalid_argument "Intern.name")
    (fun () -> ignore (Goal.Intern.name t 1));
  Alcotest.check_raises "negative" (Invalid_argument "Intern.name")
    (fun () -> ignore (Goal.Intern.name t (-1)))

(* ------------------------------------------------------------------ *)
(* Observational equivalence of memo-on and memo-off                   *)
(* ------------------------------------------------------------------ *)

(* Everything the CLI reports except wall-clock time and the memo
   counters themselves (which are the *only* fields allowed to move). *)
let signature (t : Driver.t) : string list =
  List.map
    (fun (r : Driver.check_result) ->
      match r.outcome with
      | Ok res ->
          let s = res.Rc_refinedc.Lang.E.stats in
          Fmt.str "%s:ok:apps=%d:distinct=%d:evars=%d:side=%d/%d" r.name
            s.Stats.rule_apps (Stats.distinct_rules s) s.Stats.evar_insts
            s.Stats.side_auto s.Stats.side_manual
      | Error e -> Fmt.str "%s:error:%s" r.name (Rc_lithium.Report.to_string e))
    t.Driver.results
  @ List.map (fun fn -> fn ^ ":skipped") t.Driver.skipped

let check_equivalent ~mk_off ~mk_on path =
  let off = Driver.check_file ~session:(mk_off ()) path in
  let on = Driver.check_file ~session:(mk_on ()) path in
  Alcotest.(check (list string))
    "per-function outcomes" (signature off) (signature on);
  Alcotest.(check int) "exit code" (Driver.exit_code off)
    (Driver.exit_code on);
  Alcotest.(check string) "JSON report" (json off) (json on);
  Alcotest.(check bool)
    "diagnostics identical" true
    (List.equal
       (fun a b -> Rc_util.Diagnostic.compare a b = 0)
       off.Driver.diagnostics on.Driver.diagnostics)

let corpus_equiv_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          check_equivalent
            ~mk_off:(fun () -> studies_session ())
            ~mk_on:(fun () -> studies_session ~memo:true ())
            (Filename.concat case_dir file)))
    corpus_files

(* A sample of each stress-corpus family, checked from in-memory source
   so the test leaves no files behind. *)
let stress_sample =
  [
    ("diamonds.c", Corpus.diamond_chain ~k:6);
    ("call_chain.c", Corpus.call_chain ~n:6 ());
    ("struct_nest.c", Corpus.struct_nest ~depth:4);
    ("wide_exprs.c", Corpus.wide_exprs ~stmts:4 ~width:3);
    ("loop_farm.c", Corpus.loop_farm ~functions:3 ());
  ]

let stress_equiv_tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case name `Quick (fun () ->
          let off =
            Driver.check_source ~session:(plain_session ()) ~file:name src
          in
          let on =
            Driver.check_source
              ~session:(plain_session ~memo:true ())
              ~file:name src
          in
          Alcotest.(check (list string))
            "per-function outcomes" (signature off) (signature on);
          Alcotest.(check string) "JSON report" (json off) (json on);
          Alcotest.(check bool) "verifies" true (Driver.errors off = [])))
    stress_sample

(* The memo must actually fire where it should: the diamond chain's join
   blocks repeat, so a memo-on run reports hits and subsumed
   applications while still counting the same total work. *)
let test_memo_counters () =
  let src = Corpus.diamond_chain ~k:6 in
  let off =
    Driver.check_source ~session:(plain_session ()) ~file:"d.c" src
  in
  let on =
    Driver.check_source ~session:(plain_session ~memo:true ()) ~file:"d.c" src
  in
  let s_off = Driver.stats off and s_on = Driver.stats on in
  Alcotest.(check int)
    "rule_apps independent of memo" s_off.Stats.rule_apps
    s_on.Stats.rule_apps;
  Alcotest.(check int) "no hits without memo" 0 s_off.Stats.memo_hits;
  Alcotest.(check bool) "hits recorded" true (s_on.Stats.memo_hits > 0);
  Alcotest.(check bool)
    "saved apps recorded" true
    (s_on.Stats.memo_saved_apps > 0);
  Alcotest.(check bool)
    "savings bounded by total" true
    (s_on.Stats.memo_saved_apps < s_on.Stats.rule_apps)

(* ------------------------------------------------------------------ *)
(* Parallel determinism with memoization enabled                       *)
(* ------------------------------------------------------------------ *)

(* The memo table lives in the per-check engine state, so [-j 4] workers
   never share one; the report must stay byte-identical to [-j 1]. *)
let parallel_memo_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          if not Rc_util.Pool.parallelism_available then Alcotest.skip ();
          let path = Filename.concat case_dir file in
          let seq =
            Driver.check_file ~session:(studies_session ~memo:true ()) ~jobs:1
              path
          in
          let par =
            Driver.check_file ~session:(studies_session ~memo:true ()) ~jobs:4
              path
          in
          Alcotest.(check string) "JSON output" (json seq) (json par);
          Alcotest.(check int) "exit code" (Driver.exit_code seq)
            (Driver.exit_code par)))
    [ "hashmap.c"; "bst_layered.c"; "talloc.c" ]

(* ------------------------------------------------------------------ *)
(* Profile-guided dispatch                                             *)
(* ------------------------------------------------------------------ *)

(* An adversarial profile — every observed rule weighted by the
   *inverse* of its real hit count — maximally perturbs the
   equal-priority tie order, yet verdicts and reports must not move
   (ties are only reorderable because their guards are disjoint). *)
let test_pgo_equivalence () =
  let path = Filename.concat case_dir "hashmap.c" in
  let base = Driver.check_file ~session:(studies_session ()) path in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Driver.check_result) ->
      match r.outcome with
      | Ok res ->
          Hashtbl.iter
            (fun name n ->
              Hashtbl.replace counts name
                (n + Option.value ~default:0 (Hashtbl.find_opt counts name)))
            res.Rc_refinedc.Lang.E.stats.Stats.rules_used
      | Error _ -> ())
    base.Driver.results;
  let most = Hashtbl.fold (fun _ n acc -> max n acc) counts 0 in
  let profile =
    Hashtbl.fold (fun name n acc -> (name, 1 + most - n) :: acc) counts []
    |> List.sort compare
  in
  Alcotest.(check bool) "profile is non-trivial" true (List.length profile > 5);
  let pgo_session () =
    let s = Rc_studies.Studies.session () in
    Session.create ~registry:s.Session.registry ~gs:s.Session.gs
      ~tenv:(Rc_refinedc.Rtype.create_tenv ())
      ~profile ()
  in
  (* the sessions differ where they should: the reordered index has a
     different fingerprint, so profiled runs never share cache entries *)
  Alcotest.(check bool)
    "index fingerprint moved" true
    (Rc_refinedc.Rules.fingerprint (studies_session ()).Session.index
    <> Rc_refinedc.Rules.fingerprint (pgo_session ()).Session.index);
  (* ... but not where they must not: same verdicts, stats, report *)
  let studies_pgo () =
    let s = Rc_studies.Studies.session () in
    {
      s with
      Session.index =
        Rc_refinedc.Rules.make ~extra:s.Session.extra_rules ~profile ();
    }
  in
  check_equivalent
    ~mk_off:(fun () -> studies_session ())
    ~mk_on:(fun () -> studies_pgo ())
    path

(* An empty profile must be the identity: same fingerprint, so cached
   verdicts from unprofiled runs stay valid. *)
let test_pgo_empty_profile () =
  Alcotest.(check string)
    "empty profile preserves fingerprint"
    (Rc_refinedc.Rules.fingerprint (Rc_refinedc.Rules.make ()))
    (Rc_refinedc.Rules.fingerprint (Rc_refinedc.Rules.make ~profile:[] ()))

let () =
  Alcotest.run "memo"
    [
      ( "intern",
        [
          Alcotest.test_case "round-trip" `Quick test_intern_roundtrip;
          Alcotest.test_case "bounds" `Quick test_intern_bounds;
        ] );
      ("corpus memo-on = memo-off", corpus_equiv_tests);
      ("stress memo-on = memo-off", stress_equiv_tests);
      ( "memo counters",
        [ Alcotest.test_case "diamond chain" `Quick test_memo_counters ] );
      ("parallel determinism (memo on)", parallel_memo_tests);
      ( "profile-guided dispatch",
        [
          Alcotest.test_case "adversarial profile" `Quick test_pgo_equivalence;
          Alcotest.test_case "empty profile" `Quick test_pgo_empty_profile;
        ] );
    ]

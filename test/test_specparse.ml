(* Unit tests for the annotation (specification) language parser:
   terms, propositions, types, binders, pre/post items — in both the
   paper's unicode notation and the ASCII alternates — plus error
   behaviour on malformed input. *)

open Rc_pure
open Rc_pure.Term
module Sp = Rc_frontend.Specparse
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type

let session = Rc_studies.Studies.session ()

let env =
  {
    Sp.vars =
      [
        ("a", Sort.Nat); ("n", Sort.Nat); ("p", Sort.Loc); ("s", Sort.Mset);
        ("t", Sort.Set); ("xs", Sort.List Sort.Int); ("k", Sort.Int);
        ("b", Sort.Bool);
      ];
    structs =
      [ ("chunk", Layout.mk_struct "chunk"
           [ ("size", Layout.Int Int_type.size_t); ("next", Layout.Ptr) ]) ];
    fn_specs = [];
    tenv = session.Rc_refinedc.Session.tenv;
  }

let term name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string)
        name
        (term_to_string expected)
        (term_to_string (Sp.term ~env input)))

let prop name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string)
        name
        (prop_to_string expected)
        (prop_to_string (Sp.prop ~env input)))

let ty name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string)
        name expected
        (Rc_refinedc.Rtype.rtype_to_string (Sp.rtype ~env input)))

let fails name input =
  Alcotest.test_case name `Quick (fun () ->
      match Sp.rtype ~env input with
      | _ -> Alcotest.fail "expected a parse error"
      | exception Sp.Spec_error _ -> ())

let a = nat "a"
let n = nat "n"
let k = int_v "k"
let s = mset_v "s"

let term_tests =
  [
    term "number" "42" (Num 42);
    term "variable" "a" a;
    term "addition" "a + n" (Add (a, n));
    term "precedence" "a + n * 2" (Add (a, Mul (n, Num 2)));
    term "parens" "(a + n) * 2" (Mul (Add (a, n), Num 2));
    term "subtraction-assoc" "a - n - 1" (Sub (Sub (a, n), Num 1));
    term "division" "a / 2" (Div (a, Num 2));
    term "modulo" "k % 8" (Mod (k, Num 8));
    term "multiset singleton" "{[n]}" (MsSingleton n);
    term "multiset union unicode" "{[n]} \xe2\x8a\x8e s"
      (MsUnion (MsSingleton n, s));
    term "empty multiset" "\xe2\x88\x85" MsEmpty;
    term "nil" "[]" (Nil Sort.Int);
    term "cons" "k :: xs" (Cons (k, Var ("xs", Sort.List Sort.Int)));
    term "append" "xs ++ xs"
      (Append (Var ("xs", Sort.List Sort.Int), Var ("xs", Sort.List Sort.Int)));
    term "length" "length xs" (Length (Var ("xs", Sort.List Sort.Int)));
    term "nth" "nth 0 k xs"
      (NthDflt (Num 0, k, Var ("xs", Sort.List Sort.Int)));
    term "insert" "insert k 0 xs"
      (SetListInsert (k, Num 0, Var ("xs", Sort.List Sort.Int)));
    term "ternary" "(n <= a ? a - n : a)"
      (Ite (PLe (n, a), Sub (a, n), a));
    term "sizeof" "sizeof(struct chunk)" (Num 16);
    term "min" "min(a, n)" (Min (a, n));
    term "app" "rev(xs)" (App ("rev", [ Var ("xs", Sort.List Sort.Int) ]));
    term "embedded prop" "{a <= n}" (TProp (PLe (a, n)));
  ]

let prop_tests =
  [
    prop "le-unicode" "a \xe2\x89\xa4 n" (PLe (a, n));
    prop "le-ascii" "a <= n" (PLe (a, n));
    prop "ne" "a != n" (p_ne a n);
    prop "eq" "a = n" (PEq (a, n));
    prop "conj-unicode" "a \xe2\x89\xa4 n \xe2\x88\xa7 n \xe2\x89\xa4 a"
      (PAnd (PLe (a, n), PLe (n, a)));
    prop "disj" "a <= n || n <= a" (POr (PLe (a, n), PLe (n, a)));
    prop "implication" "a <= n -> a < n + 1"
      (PImp (PLe (a, n), PLt (a, Add (n, Num 1))));
    prop "negation" "!(a = n)" (PNot (PEq (a, n)));
    prop "membership" "k \xe2\x88\x88 s" (PIn (k, s));
    prop "forall" "\xe2\x88\x80 j, j \xe2\x88\x88 s \xe2\x86\x92 n \xe2\x89\xa4 j"
      (PForall
         ("j", Sort.Int, PImp (PIn (Var ("j", Sort.Int), s), PLe (n, Var ("j", Sort.Int)))));
    prop "braced" "{a <= n}" (PLe (a, n));
    prop "set-coercion" "t = {[k]} \xe2\x88\xaa t"
      (PEq (Var ("t", Sort.Set), SetUnion (SetSingleton k, Var ("t", Sort.Set))));
    prop "paren-prop-conj" "(a < n) && (n < a)"
      (PAnd (PLt (a, n), PLt (n, a)));
  ]

let type_tests =
  [
    ty "refined int" "n @ int<size_t>" "n @ int<size_t>";
    ty "unrefined int" "int<int>" "∃n:int. n @ int<int>";
    ty "null" "null" "null";
    ty "own" "&own<uninit<n>>" "&own<uninit<n>>";
    ty "own refined" "p @ &own<n @ int<int>>" "p @ &own<n @ int<int>>";
    ty "optional" "{n <= a} @ optional<&own<uninit<n>>, null>"
      "{n ≤ a} @ optional<&own<uninit<n>>, null>";
    ty "bool" "{a <= n} @ bool<int>" "{a ≤ n} @ bool";
    ty "array" "array<int<int>, n, xs>" "array<int<int>, n, xs>";
    ty "bare ptr" "p @ ptr" "p @ ptr";
    ty "wand" "wand<{p : n @ int<int>}, a @ int<int>>"
      "wand<{p ◁ₗ n @ int<int>}, a @ int<int>>";
    ty "named with lock" "p @ lock_t" "p @ lock_t";
  ]

let misc_tests =
  [
    Alcotest.test_case "binder" `Quick (fun () ->
        Alcotest.(check (pair string string))
          "binder" ("x", "nat")
          (let x, s = Sp.binder "x: nat" in
           (x, Sort.to_string s)));
    Alcotest.test_case "binder with braces" `Quick (fun () ->
        let _, s = Sp.binder "s: {gmultiset nat}" in
        Alcotest.(check string) "sort" "multiset" (Sort.to_string s));
    Alcotest.test_case "tactics" `Quick (fun () ->
        Alcotest.(check (list string))
          "tactics" [ "multiset_solver" ]
          (Sp.tactics_item "all: multiset_solver."));
    Alcotest.test_case "hres own" `Quick (fun () ->
        match Sp.hres_item ~env "own p : n @ int<int>" with
        | Rc_refinedc.Rtype.HAtom (Rc_refinedc.Rtype.LocTy (l, _)) ->
            Alcotest.(check string) "loc" "p" (term_to_string l)
        | _ -> Alcotest.fail "expected a location atom");
    Alcotest.test_case "hres prop" `Quick (fun () ->
        match Sp.hres_item ~env "{a <= n}" with
        | Rc_refinedc.Rtype.HProp p ->
            Alcotest.(check string) "prop" "a ≤ n" (prop_to_string p)
        | _ -> Alcotest.fail "expected a proposition");
    Alcotest.test_case "inv_var" `Quick (fun () ->
        let x, _ = Sp.inv_var ~env "cur: p @ &own<n @ int<int>>" in
        Alcotest.(check string) "var" "cur" x);
    fails "unknown variable" "q @ int<int>";
    fails "unknown type" "n @ nosuchtype";
    fails "trailing garbage" "n @ int<int> extra";
    fails "unclosed angle" "&own<uninit<n>";
  ]

let () =
  Alcotest.run "specparse"
    [
      ("terms", term_tests);
      ("props", prop_tests);
      ("types", type_tests);
      ("misc", misc_tests);
    ]

(* Tests for the pure layer: simplifier, linear arithmetic, multiset /
   set / list solvers and the solver registry. *)

open Rc_pure
open Rc_pure.Term

let check_prove name hyps goal expect =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expect (Linarith.prove ~hyps goal))

let a = nat "a"
let b = nat "b"
let n = nat "n"
let i = int_v "i"
let j = int_v "j"

let simp_tests =
  let t name input expected =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check string)
          name
          (term_to_string expected)
          (term_to_string (Simp.simp_term input)))
  in
  let p name input expected =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check string)
          name
          (prop_to_string expected)
          (prop_to_string (Simp.simp_prop input)))
  in
  [
    t "add-const" (Add (Num 2, Num 3)) (Num 5);
    t "add-zero" (Add (a, Num 0)) a;
    t "mul-zero" (Mul (a, Num 0)) (Num 0);
    t "natsub-self" (NatSub (a, a)) (Num 0);
    t "natsub-consts" (NatSub (Num 3, Num 5)) (Num 0);
    t "length-cons" (Length (Cons (a, Nil Sort.Nat))) (Num 1);
    t "length-append"
      (Length (Append (Cons (a, Nil Sort.Nat), Cons (b, Nil Sort.Nat))))
      (Num 2);
    t "replicate-len" (Length (Replicate (n, Num 0))) n;
    t "ite-true" (Ite (PTrue, a, b)) a;
    t "ite-same" (Ite (PEq (a, b), n, n)) n;
    t "locofs-zero" (LocOfs (loc_v "l", Num 0)) (loc_v "l");
    t "locofs-nested"
      (LocOfs (LocOfs (loc_v "l", Num 1), Num 2))
      (LocOfs (loc_v "l", Num 3));
    t "mset-empty-union" (MsUnion (MsEmpty, mset_v "s")) (mset_v "s");
    p "eq-refl" (PEq (a, a)) PTrue;
    p "cons-nil" (PEq (Cons (a, Nil Sort.Nat), Nil Sort.Nat)) PFalse;
    p "in-empty" (PIn (a, MsEmpty)) PFalse;
    p "in-singleton" (PIn (a, MsSingleton b)) (PEq (a, b));
    p "not-not" (PNot (PNot (PEq (a, b)))) (PEq (a, b));
    p "null-ne-ofs" (PEq (NullLoc, LocOfs (loc_v "l", Num 4))) PFalse;
    p "locofs-inj"
      (PEq (LocOfs (loc_v "l", a), LocOfs (loc_v "l", b)))
      (PEq (a, b));
  ]

let destruct_tests =
  let t name input expected =
    Alcotest.test_case name `Quick (fun () ->
        let shown = function
          | None -> "contradiction"
          | Some ps -> String.concat "; " (List.map prop_to_string ps)
        in
        Alcotest.(check string)
          name (shown expected)
          (shown (Simp.destruct_hyp input)))
  in
  [
    t "append-nil"
      (PEq (Append (Var ("xs", Sort.List Sort.Nat), Var ("ys", Sort.List Sort.Nat)), Nil Sort.Nat))
      (Some
         [
           PEq (Var ("xs", Sort.List Sort.Nat), Nil Sort.Nat);
           PEq (Var ("ys", Sort.List Sort.Nat), Nil Sort.Nat);
         ]);
    t "false-hyp" (PEq (Num 1, Num 2)) None;
    t "true-hyp" (PEq (Num 1, Num 1)) (Some []);
    t "conj-split" (PAnd (PLe (a, b), PLe (b, n)))
      (Some [ PLe (a, b); PLe (b, n) ]);
  ]

let linarith_tests =
  [
    check_prove "trivial" [] (PLe (Num 1, Num 2)) true;
    check_prove "refl" [] (PLe (a, a)) true;
    check_prove "from-hyp" [ PLe (a, b) ] (PLe (a, b)) true;
    check_prove "transitive" [ PLe (a, b); PLe (b, n) ] (PLe (a, n)) true;
    check_prove "strict-chain" [ PLt (a, b); PLt (b, n) ]
      (PLt (Add (a, Num 1), n))
      true;
    check_prove "not-provable" [] (PLe (a, b)) false;
    check_prove "unsat-hyp" [ PLt (a, a) ] PFalse true;
    check_prove "nat-nonneg" [] (PLe (Num 0, a)) true;
    check_prove "int-not-nonneg" [] (PLe (Num 0, i)) false;
    check_prove "arith" [ PLe (n, a) ]
      (PLe (Sub (a, n), a))
      true;
    check_prove "natsub-bound" [] (PLe (NatSub (a, b), a)) true;
    check_prove "natsub-exact" [ PLe (b, a) ]
      (PEq (Add (NatSub (a, b), b), a))
      true;
    check_prove "min-le" [] (PLe (Min (i, j), i)) true;
    check_prove "max-ge" [] (PLe (i, Max (i, j))) true;
    check_prove "ite-branch" [ PLe (n, a) ]
      (PEq (Ite (PLe (n, a), Num 1, Num 0), Num 1))
      true;
    check_prove "disequality-split" [ PLe (a, Num 1); PNot (PEq (a, Num 1)) ]
      (PEq (a, Num 0))
      true;
    check_prove "length-nonneg" []
      (PLe (Num 0, Length (Var ("xs", Sort.List Sort.Int))))
      true;
    check_prove "congruence"
      [ PLe (Length (Var ("xs", Sort.List Sort.Int)), Num 3) ]
      (PLe (Length (Var ("xs", Sort.List Sort.Int)), Num 5))
      true;
    check_prove "mod-bound" [] (PLt (Mod (i, Num 8), Num 8)) true;
    check_prove "mod-nonneg" [] (PLe (Num 0, Mod (i, Num 8))) true;
    check_prove "div-mul" [ PEq (i, Mul (Num 8, j)); PLe (Num 0, j) ]
      (PLe (Num 0, i))
      true;
    check_prove "integrality" [ PEq (Mul (Num 2, i), Num 1) ] PFalse true;
    check_prove "impl-goal" []
      (PImp (PLe (a, Num 3), PLe (a, Num 4)))
      true;
    check_prove "or-hyp" [ POr (PLe (a, Num 1), PLe (a, Num 2)) ]
      (PLe (a, Num 2))
      true;
    check_prove "eq-subst-nonnum"
      [ PEq (Var ("xs", Sort.List Sort.Int), Nil Sort.Int) ]
      (PEq (Length (Var ("xs", Sort.List Sort.Int)), Num 0))
      true;
  ]

let default = Registry.default_prove Registry.default

let mset_tests =
  let s = mset_v "s" in
  let tail = mset_v "tail" in
  let prove hyps g = Mset_solver.prove ~prove_pure:default ~hyps g in
  let t name hyps g expect =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check bool) name expect (prove hyps g))
  in
  [
    t "union-comm" []
      (PEq (MsUnion (MsSingleton a, s), MsUnion (s, MsSingleton a)))
      true;
    t "union-assoc" []
      (PEq
         ( MsUnion (MsUnion (s, tail), MsSingleton a),
           MsUnion (s, MsUnion (tail, MsSingleton a)) ))
      true;
    t "cancel-with-eq-elems" [ PEq (a, b) ]
      (PEq (MsUnion (MsSingleton a, s), MsUnion (MsSingleton b, s)))
      true;
    t "not-equal" []
      (PEq (MsUnion (MsSingleton a, s), s))
      false;
    t "subst-hyp" [ PEq (s, MsUnion (MsSingleton n, tail)) ]
      (PEq (MsUnion (MsSingleton a, s),
            MsUnion (MsSingleton n, MsUnion (MsSingleton a, tail))))
      true;
    t "membership" [] (PIn (a, MsUnion (MsSingleton a, s))) true;
    t "membership-hyp" [ PIn (a, tail) ]
      (PIn (a, MsUnion (MsSingleton n, tail)))
      true;
    t "nonempty" []
      (PNot (PEq (MsUnion (MsSingleton a, s), MsEmpty)))
      true;
    t "bounded-forall"
      [
        PForall ("k", Sort.Nat, PImp (PIn (nat "k", tail), PLe (n, nat "k")));
        PLe (n, a);
      ]
      (PForall
         ( "k",
           Sort.Nat,
           PImp
             (PIn (nat "k", MsUnion (MsSingleton a, tail)), PLe (n, nat "k"))
         ))
      true;
  ]

let set_tests =
  let s = Var ("s", Sort.Set) in
  let l = Var ("l", Sort.Set) in
  let r = Var ("r", Sort.Set) in
  let prove hyps g = Set_solver.prove ~prove_pure:default ~hyps g in
  let t name hyps g expect =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check bool) name expect (prove hyps g))
  in
  [
    t "union-comm" []
      (PEq (SetUnion (SetSingleton a, s), SetUnion (s, SetSingleton a)))
      true;
    t "idempotent" []
      (PEq (SetUnion (SetSingleton a, SetSingleton a), SetSingleton a))
      true;
    t "member" [] (PIn (a, SetUnion (l, SetSingleton a))) true;
    t "member-hyp" [ PIn (a, l) ]
      (PIn (a, SetUnion (SetSingleton n, SetUnion (l, r))))
      true;
    t "not-member"
      [
        PForall ("k", Sort.Nat, PImp (PIn (nat "k", l), PLt (nat "k", n)));
      ]
      (PNot (PIn (n, l)))
      true;
    t "bst-split"
      [ PEq (s, SetUnion (SetSingleton n, SetUnion (l, r))) ]
      (PIn (n, s))
      true;
    t "forall-over-union"
      [
        PForall ("k", Sort.Nat, PImp (PIn (nat "k", l), PLt (nat "k", n)));
        PLt (a, n);
      ]
      (PForall
         ( "k",
           Sort.Nat,
           PImp
             (PIn (nat "k", SetUnion (SetSingleton a, l)), PLt (nat "k", n))
         ))
      true;
  ]

let list_tests =
  let xs = Var ("xs", Sort.List Sort.Int) in
  let ys = Var ("ys", Sort.List Sort.Int) in
  let prove hyps g = List_solver.prove ~prove_pure:default ~hyps g in
  let t name hyps g expect =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check bool) name expect (prove hyps g))
  in
  [
    t "append-assoc" []
      (PEq (Append (Append (xs, ys), Cons (i, Nil Sort.Int)),
            Append (xs, Append (ys, Cons (i, Nil Sort.Int)))))
      true;
    t "cancel-front" []
      (PEq (Cons (i, xs), Cons (i, xs)))
      true;
    t "cancel-both-ends" []
      (PEq (Append (Cons (i, xs), Cons (j, Nil Sort.Int)),
            Append (Cons (i, xs), Cons (j, Nil Sort.Int))))
      true;
    t "ne-extra-elem" []
      (PNot (PEq (Cons (i, xs), xs)))
      true;
    t "subst" [ PEq (ys, Cons (i, xs)) ]
      (PEq (ys, Cons (i, xs)))
      true;
    t "repl-eq" [ PEq (n, b) ]
      (PEq (Replicate (n, Num 0), Replicate (b, Num 0)))
      true;
  ]

let registry_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "auto-verdict" (fun () ->
        Alcotest.(check string)
          "auto" "auto"
          (Fmt.str "%a" Registry.pp_verdict
             (Registry.solve Registry.default ~hyps:[ PLe (a, b) ]
                (PLe (a, Add (b, Num 1))))));
    t "tactics-verdict" (fun () ->
        let g =
          PEq
            ( MsUnion (MsSingleton a, mset_v "s"),
              MsUnion (mset_v "s", MsSingleton a) )
        in
        Alcotest.(check string)
          "via multiset solver" "solver:multiset_solver"
          (Fmt.str "%a" Registry.pp_verdict
             (Registry.solve Registry.default ~tactics:[ "multiset_solver" ]
                ~hyps:[] g)));
    t "unsolved-without-tactics" (fun () ->
        let g =
          PEq
            ( MsUnion (MsSingleton a, mset_v "s"),
              MsUnion (mset_v "s", MsSingleton a) )
        in
        Alcotest.(check bool)
          "unsolved" true
          (Registry.solve Registry.default ~hyps:[] g = Registry.Unsolved));
    t "lemma-application" (fun () ->
        (* registries are values: adding a lemma builds a new registry,
           leaving Registry.default untouched *)
        let reg =
          Registry.add_lemma Registry.default
            {
              Registry.lname = "mod_lt_self";
              vars = [ ("x", Sort.Nat); ("m", Sort.Nat) ];
              premises = [ PLt (Num 0, Var ("m", Sort.Nat)) ];
              concl =
                PLt (Mod (Var ("x", Sort.Nat), Var ("m", Sort.Nat)),
                     Var ("m", Sort.Nat));
            }
        in
        let g = PLt (Mod (nat "h", nat "cap"), nat "cap") in
        let v = Registry.solve reg ~hyps:[ PLt (Num 0, nat "cap") ] g in
        Alcotest.(check string)
          "lemma verdict" "lemma:mod_lt_self"
          (Fmt.str "%a" Registry.pp_verdict v);
        Alcotest.(check bool) "default registry unaffected" true
          (Registry.solve Registry.default ~hyps:[ PLt (Num 0, nat "cap") ] g
           = Registry.Unsolved));
  ]

(* property-based tests *)

let gen_lin_term =
  let open QCheck.Gen in
  let var = oneofl [ a; b; n ] in
  fix
    (fun self depth ->
      if depth <= 0 then oneof [ var; map (fun k -> Num k) (int_range (-20) 20) ]
      else
        frequency
          [
            (3, var);
            (3, map (fun k -> Num k) (int_range (-20) 20));
            (2, map2 (fun x y -> Add (x, y)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun x y -> Sub (x, y)) (self (depth - 1)) (self (depth - 1)));
            (1, map (fun x -> Mul (Num 3, x)) (self (depth - 1)));
          ])
    3

let eval_term env t =
  let rec go t =
    match t with
    | Var (x, _) -> List.assoc x env
    | Num k -> k
    | Add (x, y) -> go x + go y
    | Sub (x, y) -> go x - go y
    | NatSub (x, y) -> max 0 (go x - go y)
    | Mul (x, y) -> go x * go y
    | Min (x, y) -> min (go x) (go y)
    | Max (x, y) -> max (go x) (go y)
    | _ -> failwith "eval"
  in
  go t

let prop_tests =
  let lin_sound =
    QCheck.Test.make ~count:300 ~name:"linarith is sound on random goals"
      QCheck.(
        pair
          (make ~print:(fun (x, y) ->
               Printf.sprintf "%s <= %s" (term_to_string x) (term_to_string y))
             QCheck.Gen.(pair gen_lin_term gen_lin_term))
          (triple small_nat small_nat small_nat))
      (fun (((x, y), (va, vb, vn))) ->
        (* if the solver proves x <= y with no hypotheses, the inequality
           must hold for every valuation of the nat variables *)
        if Linarith.prove ~hyps:[] (PLe (x, y)) then
          let env = [ ("a", va); ("b", vb); ("n", vn) ] in
          eval_term env x <= eval_term env y
        else true)
  in
  let simp_sound =
    QCheck.Test.make ~count:300 ~name:"simplifier preserves value"
      QCheck.(
        pair
          (make ~print:term_to_string gen_lin_term)
          (triple small_nat small_nat small_nat))
      (fun (t, (va, vb, vn)) ->
        let env = [ ("a", va); ("b", vb); ("n", vn) ] in
        eval_term env t = eval_term env (Simp.simp_term t))
  in
  List.map QCheck_alcotest.to_alcotest [ lin_sound; simp_sound ]

let extension_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "resolve_ites uses branch facts" (fun () ->
        let goal = PEq (Ite (PLe (n, a), Sub (a, n), a), Sub (a, n)) in
        Alcotest.(check bool)
          "provable under n <= a" true
          (Registry.default_prove Registry.default ~hyps:[ PLe (n, a) ] goal);
        Alcotest.(check bool)
          "not provable without" false
          (Registry.default_prove Registry.default ~hyps:[] goal));
    t "lemma premises can match hypotheses" (fun () ->
        (* the layered-BST pattern: the shape premise binds metavars *)
        let xs = Var ("xs", Sort.List Sort.Int) in
        let lxs = Var ("lxs", Sort.List Sort.Int) in
        let rxs = Var ("rxs", Sort.List Sort.Int) in
        let v = Var ("v", Sort.Int) in
        let k = Var ("k", Sort.Int) in
        let reg =
          Registry.add_lemma Registry.default
            {
              Registry.lname = "elem_of_root";
              vars =
                [ ("k", Sort.Int); ("v", Sort.Int);
                  ("xs", Sort.List Sort.Int); ("lxs", Sort.List Sort.Int);
                  ("rxs", Sort.List Sort.Int) ];
              premises =
                [ PEq (xs, Append (lxs, Cons (v, rxs))); PEq (k, v) ];
              concl = PIn (k, xs);
            }
        in
        let zs = Var ("zs", Sort.List Sort.Int) in
        let ls = Var ("ls", Sort.List Sort.Int) in
        let rs = Var ("rs", Sort.List Sort.Int) in
        let w = Var ("w", Sort.Int) in
        let u = Var ("u", Sort.Int) in
        let verdict =
          Registry.solve reg
            ~hyps:[ PEq (zs, Append (ls, Cons (w, rs))); PEq (u, w) ]
            (PIn (u, zs))
        in
        Alcotest.(check string)
          "lemma fires" "lemma:elem_of_root"
          (Fmt.str "%a" Registry.pp_verdict verdict));
    t "set solver saturates bounded facts" (fun () ->
        (* from r ∈ l and ∀j∈l. j < v conclude r < v, then r ≤ v *)
        let l = Var ("l", Sort.Set) in
        let r = int_v "r" in
        let v = int_v "v" in
        Alcotest.(check bool)
          "saturation" true
          (Set_solver.prove
             ~prove_pure:(Registry.default_prove Registry.default)
             ~hyps:
               [
                 PIn (r, l);
                 PForall ("j", Sort.Int, PImp (PIn (int_v "j", l), PLt (int_v "j", v)));
               ]
             (PLe (r, v))));
    t "list solver rewrites defined functions" (fun () ->
        (* the rev-unfold hook travels as a value, not via global state *)
        let hooks = Rc_studies.Studies.hooks in
        let xs = Var ("xs", Sort.List Sort.Int) in
        let cs = Var ("cs", Sort.List Sort.Int) in
        let tl = Var ("tl", Sort.List Sort.Int) in
        let ys = Var ("ys", Sort.List Sort.Int) in
        let x = int_v "x" in
        let rev l = App ("rev", [ l ]) in
        Alcotest.(check bool)
          "rev-append reasoning" true
          (List_solver.prove ~hooks
             ~prove_pure:(Registry.default_prove Registry.default)
             ~hyps:
               [ PEq (cs, Cons (x, tl)); PEq (rev xs, Append (rev cs, ys)) ]
             (PEq (rev xs, Append (rev tl, Cons (x, ys))))));
    t "nat-subtraction case split" (fun () ->
        Alcotest.(check bool)
          "a - (a - n) = n under n <= a" true
          (Linarith.prove ~hyps:[ PLe (n, a) ]
             (PEq (Sub (a, Sub (a, n)), n))));
  ]

let () =
  Alcotest.run "pure"
    [
      ("simp", simp_tests);
      ("destruct-hyp", destruct_tests);
      ("linarith", linarith_tests);
      ("multiset-solver", mset_tests);
      ("set-solver", set_tests);
      ("list-solver", list_tests);
      ("registry", registry_tests);
      ("extensions", extension_tests);
      ("properties", prop_tests);
    ]

(* End-to-end tests of the RefinedC type system on hand-elaborated
   Caesium code: the paper's Figure 1 allocator (both variants of §6),
   its buggy-specification error message (§2.1), and smaller sanity
   checks. *)

open Rc_pure
open Rc_pure.Term
open Rc_caesium.Syntax
open Rc_refinedc
open Rc_refinedc.Rtype

let u64 = Int_type.size_t
let lu64 = Layout.Int u64
let li32 = Layout.Int Int_type.i32
let use ?(atomic = false) layout arg = Use { atomic; layout; arg }

let mem_t_sl = Layout.mk_struct "mem_t" [ ("len", lu64); ("buffer", Layout.Ptr) ]

(* the session all tests in this file check under: stock configuration
   plus the hand-registered mem_t named type *)
let session = Session.create ()

let () =
  register_type_def session.Session.tenv
    {
      td_name = "mem_t";
      td_params = [ ("a", Sort.Nat) ];
      td_layout = Some (Layout.Struct mem_t_sl);
      td_unfold =
        (function
        | [ a ] ->
            TStruct (mem_t_sl, [ TInt (u64, a); TOwn (None, TUninit a) ])
        | _ -> invalid_arg "mem_t arity");
    }

(* -------------------------------------------------------------- *)
(* Figure 1: the allocator, hand-elaborated to a Caesium CFG        *)
(* -------------------------------------------------------------- *)

let d_len = FieldOfs { arg = use Layout.Ptr (VarLoc "d"); struct_ = mem_t_sl; field = "len" }
let d_buffer =
  FieldOfs { arg = use Layout.Ptr (VarLoc "d"); struct_ = mem_t_sl; field = "buffer" }

let binop op ot1 ot2 e1 e2 = BinOp { op; ot1; ot2; e1; e2 }

(* variant 1 (Figure 1): allocate from the end of the buffer *)
let alloc_fn =
  {
    fname = "alloc";
    args = [ ("d", Layout.Ptr); ("sz", lu64) ];
    locals = [];
    ret_layout = Layout.Ptr;
    entry = "b0";
    blocks =
      [
        ( "b0",
          {
            stmts = [];
            term =
              CondGoto
                {
                  ot = OInt Int_type.i32;
                  cond =
                    binop GtOp (OInt u64) (OInt u64) (use lu64 (VarLoc "sz"))
                      (use lu64 d_len);
                  if_true = "btrue";
                  if_false = "bfalse";
                };
          } );
        ("btrue", { stmts = []; term = Return (Some NullConst) });
        ( "bfalse",
          {
            stmts =
              [
                Assign
                  {
                    atomic = false;
                    layout = lu64;
                    lhs = d_len;
                    rhs =
                      binop SubOp (OInt u64) (OInt u64) (use lu64 d_len)
                        (use lu64 (VarLoc "sz"));
                  };
              ];
            term =
              Return
                (Some
                   (binop (PtrPlusOp (Layout.Int Int_type.u8)) OPtr (OInt u64)
                      (use Layout.Ptr d_buffer) (use lu64 d_len)));
          } );
      ];
  }

(* variant 2 (§6, suggested by a PLDI reviewer): allocate from the start *)
let alloc2_fn =
  {
    alloc_fn with
    fname = "alloc2";
    locals = [ ("res", Layout.Ptr) ];
    blocks =
      [
        ( "b0",
          {
            stmts = [];
            term =
              CondGoto
                {
                  ot = OInt Int_type.i32;
                  cond =
                    binop GtOp (OInt u64) (OInt u64) (use lu64 (VarLoc "sz"))
                      (use lu64 d_len);
                  if_true = "btrue";
                  if_false = "bfalse";
                };
          } );
        ("btrue", { stmts = []; term = Return (Some NullConst) });
        ( "bfalse",
          {
            stmts =
              [
                Assign
                  {
                    atomic = false;
                    layout = Layout.Ptr;
                    lhs = VarLoc "res";
                    rhs = use Layout.Ptr d_buffer;
                  };
                Assign
                  {
                    atomic = false;
                    layout = Layout.Ptr;
                    lhs = d_buffer;
                    rhs =
                      binop (PtrPlusOp (Layout.Int Int_type.u8)) OPtr
                        (OInt u64)
                        (use Layout.Ptr d_buffer)
                        (use lu64 (VarLoc "sz"));
                  };
                Assign
                  {
                    atomic = false;
                    layout = lu64;
                    lhs = d_len;
                    rhs =
                      binop SubOp (OInt u64) (OInt u64) (use lu64 d_len)
                        (use lu64 (VarLoc "sz"));
                  };
              ];
            term = Return (Some (use Layout.Ptr (VarLoc "res")));
          } );
      ];
  }

let a = Var ("a", Sort.Nat)
let n = Var ("n", Sort.Nat)
let p = Var ("p", Sort.Loc)

let alloc_spec ?(name = "alloc") ?(cmp = PLe (n, a)) () : fn_spec =
  {
    fs_name = name;
    fs_params = [ ("a", Sort.Nat); ("n", Sort.Nat); ("p", Sort.Loc) ];
    fs_args = [ TOwn (Some p, TNamed ("mem_t", [ a ])); TInt (u64, n) ];
    fs_pre = [];
    fs_exists = [];
    fs_ret = TOptional (cmp, TOwn (None, TUninit n), TNull);
    fs_post =
      [
        HAtom
          (LocTy
             (p, TNamed ("mem_t", [ Ite (PLe (n, a), Sub (a, n), a) ])));
      ];
    fs_tactics = [];
    fs_loc = None;
  }

let check fn spec =
  Typecheck.check_fn ~session ~specs:[ (spec.fs_name, spec) ]
    { func = fn; spec; invs = []; meta = Lang.empty_meta }

let expect_ok name fn spec =
  Alcotest.test_case name `Quick (fun () ->
      match check fn spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "verification failed:@.%s" (Rc_lithium.Report.to_string e))

let expect_fail name fn spec =
  Alcotest.test_case name `Quick (fun () ->
      match check fn spec with
      | Ok _ -> Alcotest.fail "verification unexpectedly succeeded"
      | Error _ -> ())

(* -------------------------------------------------------------- *)
(* Smaller sanity checks                                            *)
(* -------------------------------------------------------------- *)

(* int id(int x) { return x; } *)
let id_fn =
  {
    fname = "id";
    args = [ ("x", li32) ];
    locals = [];
    ret_layout = li32;
    entry = "b0";
    blocks =
      [ ("b0", { stmts = []; term = Return (Some (use li32 (VarLoc "x"))) }) ];
  }

let id_spec =
  {
    fs_name = "id";
    fs_params = [ ("n", Sort.Int) ];
    fs_args = [ TInt (Int_type.i32, Var ("n", Sort.Int)) ];
    fs_pre = [];
    fs_exists = [];
    fs_ret = TInt (Int_type.i32, Var ("n", Sort.Int));
    fs_post = [];
    fs_tactics = [];
    fs_loc = None;
  }

(* int add3(int x) { return x + 3; }, spec requires n+3 in range *)
let add3_fn =
  {
    id_fn with
    fname = "add3";
    blocks =
      [
        ( "b0",
          {
            stmts = [];
            term =
              Return
                (Some
                   (binop AddOp (OInt Int_type.i32) (OInt Int_type.i32)
                      (use li32 (VarLoc "x"))
                      (IntConst (3, Int_type.i32))));
          } );
      ];
  }

let add3_spec ~with_pre =
  {
    id_spec with
    fs_name = "add3";
    fs_pre =
      (if with_pre then
         [ HProp (PLt (Var ("n", Sort.Int), Num 1000000)) ]
       else []);
    fs_ret = TInt (Int_type.i32, Add (Var ("n", Sort.Int), Num 3));
  }

let basic_tests =
  [
    expect_ok "id" id_fn id_spec;
    expect_ok "add3 with precondition" add3_fn (add3_spec ~with_pre:true);
    expect_fail "add3 without range precondition" add3_fn
      (add3_spec ~with_pre:false);
  ]

let alloc_tests =
  [
    expect_ok "alloc (Figure 1)" alloc_fn (alloc_spec ());
    expect_ok "alloc variant 2 (§6), same rules" alloc2_fn
      (alloc_spec ~name:"alloc2" ());
    expect_fail "alloc with buggy spec n < a (§2.1)" alloc_fn
      (alloc_spec ~cmp:(PLt (n, a)) ());
  ]

let error_message_test =
  Alcotest.test_case "buggy spec yields a located, readable error" `Quick
    (fun () ->
      match check alloc_fn (alloc_spec ~cmp:(PLt (n, a)) ()) with
      | Ok _ -> Alcotest.fail "expected failure"
      | Error e ->
          let msg = Rc_lithium.Report.to_string e in
          Alcotest.(check bool)
            "mentions a side condition" true
            (e.Rc_lithium.Report.kind
             |> function
             | Rc_lithium.Report.Unsolved_side_condition _ -> true
             | _ -> false);
          Alcotest.(check bool)
            "message is non-empty" true
            (String.length msg > 10))

let () =
  Alcotest.run "refinedc"
    [
      ("basic", basic_tests);
      ("alloc", alloc_tests);
      ("errors", [ error_message_test ]);
    ]

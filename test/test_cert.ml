(* Certificate-checker tests: genuine certificates re-check; tampered
   certificates (unknown rules, false side conditions, malformed
   structure) are flagged — the property that keeps the search engine
   out of the trusted computing base. *)

open Rc_pure.Term
module Deriv = Rc_lithium.Deriv
module Checker = Rc_cert.Checker

let session () = Rc_studies.Studies.session ()

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

(* Returns the derivation together with the session that produced it:
   certificates only re-check relative to that session's rule library
   and registry. *)
let genuine_deriv () =
  let s = session () in
  let t =
    Rc_frontend.Driver.check_file ~session:s
      (Filename.concat case_dir "mem_alloc.c")
  in
  match (List.hd t.results).outcome with
  | Ok res -> (s, res.Rc_refinedc.Lang.E.deriv)
  | Error _ -> Alcotest.fail "mem_alloc did not verify"

let tests =
  [
    Alcotest.test_case "genuine certificate re-checks" `Quick (fun () ->
        let s, d = genuine_deriv () in
        let rep = Checker.check ~session:s d in
        Alcotest.(check bool) "ok" true (Checker.ok rep);
        Alcotest.(check bool) "has rule applications" true
          (rep.Checker.rule_applications > 10);
        Alcotest.(check bool) "has side conditions" true
          (rep.Checker.side_conditions > 3));
    Alcotest.test_case "unknown rule is flagged" `Quick (fun () ->
        let s, d = genuine_deriv () in
        let tampered =
          Deriv.make "rule:NO-SUCH-RULE" ~info:"forged" [ d ]
        in
        let rep = Checker.check ~session:s tampered in
        Alcotest.(check bool) "rejected" false (Checker.ok rep));
    Alcotest.test_case "false side condition is flagged" `Quick (fun () ->
        let s, d = genuine_deriv () in
        let tampered =
          Deriv.make "side-condition"
            ~side:[ (PLt (Num 2, Num 1), Rc_pure.Registry.Auto) ]
            [ d ]
        in
        let rep = Checker.check ~session:s tampered in
        Alcotest.(check bool) "rejected" false (Checker.ok rep));
    Alcotest.test_case "side condition with dangling evars is flagged" `Quick
      (fun () ->
        let tampered =
          Deriv.make "side-condition"
            ~side:[ (PEq (Evar (0, Rc_pure.Sort.Int), Num 1), Rc_pure.Registry.Auto) ]
            []
        in
        let rep = Checker.check ~session:(session ()) tampered in
        Alcotest.(check bool) "rejected" false (Checker.ok rep));
    Alcotest.test_case "claimed-auto verdicts are recomputed, not believed"
      `Quick (fun () ->
        (* a condition only a named solver proves, recorded with the right
           tactics, re-checks; without the tactics it must fail *)
        let side =
          [
            ( PEq
                ( MsUnion (MsSingleton (Num 1), Var ("s", Rc_pure.Sort.Mset)),
                  MsUnion (Var ("s", Rc_pure.Sort.Mset), MsSingleton (Num 1)) ),
              Rc_pure.Registry.Auto );
          ]
        in
        let with_tactics =
          Deriv.make "side-condition" ~side ~tactics:[ "multiset_solver" ] []
        in
        let without =
          Deriv.make "side-condition" ~side ~tactics:[] []
        in
        let s = session () in
        Alcotest.(check bool) "with tactics" true
          (Checker.ok (Checker.check ~session:s with_tactics));
        Alcotest.(check bool) "without tactics" false
          (Checker.ok (Checker.check ~session:s without)));
    Alcotest.test_case "certificates of all case studies re-check" `Slow
      (fun () ->
        List.iter
          (fun file ->
            let s = session () in
            let t =
              Rc_frontend.Driver.check_file ~session:s
                (Filename.concat case_dir file)
            in
            List.iter
              (fun (r : Rc_frontend.Driver.check_result) ->
                match r.outcome with
                | Ok res ->
                    let rep =
                      Checker.check ~session:s res.Rc_refinedc.Lang.E.deriv
                    in
                    if not (Checker.ok rep) then
                      Alcotest.failf "%s/%s: %s" file r.name
                        (Fmt.str "%a" Checker.pp_report rep)
                | Error _ -> Alcotest.failf "%s/%s failed" file r.name)
              t.results)
          [ "free_list.c"; "bst_direct.c"; "spinlock.c" ]);
  ]

let () = Alcotest.run "cert" [ ("checker", tests) ]

(* Robustness of the verification pipeline: resource budgets, fault
   isolation, and seeded fault-injection campaigns.

   The contract under test (ISSUE 1):
   - proof search honours per-function budgets (fuel / wall-clock /
     depth) and reports exhaustion as a structured [Resource_exhausted]
     diagnostic instead of hanging;
   - a crash in one function's check (simulated by deterministic fault
     injection at solver calls, rule lookup, and evar resolution) is
     isolated: the driver never lets an exception escape, the failed
     function carries a structured report, and the other functions still
     verify;
   - with injection disarmed and budgets unlimited, behaviour is
     bit-for-bit the seed behaviour: all case studies verify with
     identical Figure 7 statistics. *)

module Driver = Rc_frontend.Driver
module Report = Rc_lithium.Report
module Budget = Rc_util.Budget
module Faultsim = Rc_util.Faultsim

let session () = Rc_studies.Studies.session ()

(* a session with its own fault-injection campaign: campaigns are values
   owned by exactly one session, so two sessions never observe each
   other's injections *)
let faulty ?rate ?sites ?max_faults seed =
  let campaign = Faultsim.create ?rate ?sites ?max_faults seed in
  let s =
    Rc_refinedc.Session.with_fault (session ()) (Some campaign)
  in
  (s, campaign)

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

(* the 11 case studies of Figure 7 (bench corpus) *)
let corpus =
  [
    "linked_list.c"; "queue.c"; "binary_search.c"; "talloc.c";
    "page_alloc.c"; "bst_layered.c"; "bst_direct.c"; "hashmap.c";
    "mpool.c"; "spinlock.c"; "barrier.c";
  ]

let path f = Filename.concat case_dir f

(* a small two-function source used by the isolation tests *)
let two_fn_src =
  {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::requires("{x <= 100}")]]
[[rc::returns("(x + 1) @ int<int>")]]
int incr(int a) { return a + 1; }

[[rc::parameters("y: int")]]
[[rc::args("y @ int<int>")]]
[[rc::requires("{y <= 100}")]]
[[rc::returns("(y + 2) @ int<int>")]]
int incr2(int b) { return b + 2; }
|}

(* ---------------------------------------------------------------- *)
(* Budgets                                                           *)
(* ---------------------------------------------------------------- *)

let kind_of (t : Driver.t) name =
  match List.assoc_opt name (Driver.errors t) with
  | Some e -> Some e.Report.kind
  | None -> None

let budget_tests =
  [
    Alcotest.test_case "fuel exhaustion is a structured diagnostic" `Quick
      (fun () ->
        let budget = { Budget.unlimited with Budget.fuel = Some 20 } in
        let t =
          Driver.check_file ~session:(session ()) ~budget
            (path "binary_search.c")
        in
        Alcotest.(check bool) "all failed" true (Driver.errors t <> []);
        List.iter
          (fun (fn, (e : Report.t)) ->
            match e.Report.kind with
            | Report.Resource_exhausted
                { exh = Budget.Out_of_fuel 20; rule_apps; elapsed; _ } ->
                if rule_apps < 0 || elapsed < 0. then
                  Alcotest.failf "%s: bogus counters" fn
            | k -> Alcotest.failf "%s: wrong kind %s" fn (Report.kind_label k))
          (Driver.errors t);
        Alcotest.(check int) "exit code 2" 2 (Driver.exit_code t));
    Alcotest.test_case "exhaustion reports the goal head" `Quick (fun () ->
        let budget = { Budget.unlimited with Budget.fuel = Some 200 } in
        let t =
          Driver.check_file ~session:(session ()) ~budget
            (path "binary_search.c")
        in
        match kind_of t "bsearch_idx" with
        | Some (Report.Resource_exhausted { goal_head; rule_apps; _ }) ->
            Alcotest.(check bool) "has goal head" true (goal_head <> None);
            Alcotest.(check bool) "has rule apps" true (rule_apps > 0)
        | Some k ->
            Alcotest.failf "wrong kind %s" (Report.kind_label k)
        | None -> Alcotest.fail "bsearch_idx verified under 200 fuel?");
    Alcotest.test_case "zero deadline times out immediately" `Quick
      (fun () ->
        let budget = { Budget.unlimited with Budget.timeout = Some 0.0 } in
        let t =
          Driver.check_file ~session:(session ()) ~budget (path "spinlock.c")
        in
        List.iter
          (fun (fn, (e : Report.t)) ->
            match e.Report.kind with
            | Report.Resource_exhausted { exh = Budget.Timed_out _; _ } -> ()
            | k -> Alcotest.failf "%s: wrong kind %s" fn (Report.kind_label k))
          (Driver.errors t);
        Alcotest.(check bool) "all failed" true
          (List.length (Driver.errors t) = List.length t.Driver.results));
    Alcotest.test_case "depth limit reports Depth_exceeded" `Quick (fun () ->
        let budget = { Budget.unlimited with Budget.max_depth = Some 5 } in
        let t =
          Driver.check_file ~session:(session ()) ~budget (path "spinlock.c")
        in
        List.iter
          (fun (_, (e : Report.t)) ->
            match e.Report.kind with
            | Report.Resource_exhausted
                { exh = Budget.Depth_exceeded 5; _ } ->
                ()
            | k -> Alcotest.failf "wrong kind %s" (Report.kind_label k))
          (Driver.errors t);
        Alcotest.(check bool) "all failed" true (Driver.errors t <> []));
    Alcotest.test_case "generous budget changes nothing" `Quick (fun () ->
        let budget =
          {
            Budget.fuel = Some 10_000_000;
            timeout = Some 600.;
            max_depth = Some 1_000_000;
          }
        in
        let t =
          Driver.check_file ~session:(session ()) ~budget (path "spinlock.c")
        in
        Alcotest.(check bool) "verifies" true (Driver.all_ok t);
        Alcotest.(check int) "exit code 0" 0 (Driver.exit_code t));
  ]

(* ---------------------------------------------------------------- *)
(* Fault isolation                                                   *)
(* ---------------------------------------------------------------- *)

let isolation_tests =
  [
    Alcotest.test_case "an injected crash is confined to one function"
      `Quick (fun () ->
        (* rate 1.0 capped at one fault: the first solver call dies,
           everything after must be unaffected *)
        let s, _ = faulty ~rate:1.0 ~sites:[ "solver" ] ~max_faults:1 42 in
        let t =
          try Driver.check_source ~session:s ~file:"two.c" two_fn_src
          with e -> Alcotest.failf "escaped: %s" (Printexc.to_string e)
        in
        let faults = Driver.faults t in
        Alcotest.(check int) "one fault" 1 (List.length faults);
        (match faults with
        | [ (_, e) ] -> (
            (* injected faults are classified transient — the retryable
               subset of checker faults *)
            match e.Report.kind with
            | Report.Transient_fault msg ->
                Alcotest.(check bool) "names the site" true
                  (Str.string_match (Str.regexp ".*solver") msg 0)
            | k -> Alcotest.failf "wrong kind %s" (Report.kind_label k))
        | _ -> assert false);
        Alcotest.(check bool) "the other function verified" true
          (List.exists
             (fun (r : Driver.check_result) -> Result.is_ok r.outcome)
             t.Driver.results);
        Alcotest.(check int) "exit code 2" 2 (Driver.exit_code t));
    Alcotest.test_case "fail-fast stops, keep-going continues" `Quick
      (fun () ->
        let s, _ = faulty ~rate:1.0 ~sites:[ "solver" ] ~max_faults:1 42 in
        let t =
          Driver.check_source ~session:s ~fail_fast:true ~file:"two.c"
            two_fn_src
        in
        Alcotest.(check int) "one result" 1 (List.length t.Driver.results);
        Alcotest.(check (list string)) "one skipped" [ "incr2" ]
          t.Driver.skipped;
        Alcotest.(check bool) "not ok" false (Driver.all_ok t);
        (* default keep-going: both functions appear (fresh campaign —
           the previous one already spent its single fault) *)
        let s2, _ = faulty ~rate:1.0 ~sites:[ "solver" ] ~max_faults:1 42 in
        let t2 = Driver.check_source ~session:s2 ~file:"two.c" two_fn_src in
        Alcotest.(check int) "two results" 2 (List.length t2.Driver.results);
        Alcotest.(check (list string)) "none skipped" [] t2.Driver.skipped);
    Alcotest.test_case "json diagnostics are emitted and escaped" `Quick
      (fun () ->
        let budget = { Budget.unlimited with Budget.fuel = Some 10 } in
        let t =
          Driver.check_file ~session:(session ()) ~budget (path "spinlock.c")
        in
        let s = Rc_util.Jsonout.to_string (Driver.to_json t) in
        let has what =
          try
            ignore (Str.search_forward (Str.regexp_string what) s 0);
            true
          with Not_found -> false
        in
        Alcotest.(check bool) "has exit code" true (has "\"exit_code\":2");
        Alcotest.(check bool) "has fault status" true (has "\"fault\"");
        Alcotest.(check bool) "has kind" true (has "out_of_fuel");
        (* escaping: no raw newlines inside string literals *)
        String.iter
          (fun c ->
            if c = '\n' then ()
            else if Char.code c < 0x20 then
              Alcotest.failf "unescaped control char %C" c)
          s);
  ]

let jsonout_tests =
  [
    Alcotest.test_case "string escaping" `Quick (fun () ->
        let open Rc_util.Jsonout in
        Alcotest.(check string)
          "quotes, backslash, newline, control"
          {|{"k":"a\"b\\c\nd\u0001"}|}
          (to_string (Obj [ ("k", Str "a\"b\\c\nd\x01") ])));
  ]

(* ---------------------------------------------------------------- *)
(* Seeded fault-injection campaigns over the Figure 7 corpus         *)
(* ---------------------------------------------------------------- *)

(* a stats fingerprint for the behaviour-equivalence check *)
let fingerprint (t : Driver.t) =
  let s = Driver.stats t in
  ( s.Rc_lithium.Stats.rule_apps,
    s.Rc_lithium.Stats.evar_insts,
    s.Rc_lithium.Stats.side_auto,
    s.Rc_lithium.Stats.side_manual,
    List.map
      (fun (r : Driver.check_result) -> (r.name, Result.is_ok r.outcome))
      t.Driver.results )

let baseline : (string * (int * int * int * int * (string * bool) list)) list ref
    =
  ref []

let baseline_tests =
  [
    Alcotest.test_case "all case studies verify (baseline)" `Quick (fun () ->
        baseline :=
          List.map
            (fun file ->
              let t = Driver.check_file ~session:(session ()) (path file) in
              (match Driver.errors t with
              | [] -> ()
              | (fn, e) :: _ ->
                  Alcotest.failf "%s/%s: %s" file fn (Report.to_string e));
              (file, fingerprint t))
            corpus);
  ]

(* one campaign = one seed on one study, injection armed *)
let outcome_signature (t : Driver.t) =
  List.map
    (fun (r : Driver.check_result) ->
      ( r.name,
        match r.outcome with
        | Ok _ -> "ok"
        | Error e -> Report.kind_label e.Report.kind ))
    t.Driver.results

let run_campaign ~seed ~rate file =
  let s, campaign = faulty ~rate (seed * 7919 + Hashtbl.hash file) in
  match Driver.check_file ~session:s (path file) with
  | t ->
      (* every failure must carry a structured, printable report *)
      List.iter
        (fun (_, (e : Report.t)) -> ignore (Report.to_string e))
        (Driver.errors t);
      (outcome_signature t, Faultsim.injected_count campaign)
  | exception Driver.Frontend_error _ ->
      (* structured too (and unreachable: no frontend hooks) *)
      ([], Faultsim.injected_count campaign)
  | exception e ->
      Alcotest.failf "campaign seed=%d file=%s: uncaught exception %s" seed
        file (Printexc.to_string e)

let campaign_tests =
  [
    Alcotest.test_case
      "55 seeded campaigns: no uncaught exceptions, structured failures"
      `Quick (fun () ->
        let seeds = [ 1; 2; 3; 4; 5 ] in
        let injected = ref 0 in
        List.iter
          (fun file ->
            List.iter
              (fun seed ->
                let _, n = run_campaign ~seed ~rate:0.004 file in
                injected := !injected + n)
              seeds)
          corpus;
        (* the campaign must actually have exercised the fault paths *)
        Alcotest.(check bool)
          (Printf.sprintf "faults were injected (%d)" !injected)
          true (!injected > 0));
    Alcotest.test_case "campaigns are deterministic in the seed" `Quick
      (fun () ->
        List.iter
          (fun file ->
            let a = run_campaign ~seed:99 ~rate:0.01 file in
            let b = run_campaign ~seed:99 ~rate:0.01 file in
            if a <> b then
              Alcotest.failf "%s: same seed, different outcomes" file)
          [ "linked_list.c"; "hashmap.c"; "mpool.c" ]);
    Alcotest.test_case "campaign under budget also stays structured" `Quick
      (fun () ->
        let budget =
          { Budget.fuel = Some 2_000; timeout = Some 10.; max_depth = None }
        in
        List.iter
          (fun file ->
            let s, _ = faulty ~rate:0.002 (Hashtbl.hash file) in
            match Driver.check_file ~session:s ~budget (path file) with
            | t ->
                List.iter
                  (fun (_, (e : Report.t)) ->
                    ignore (Report.to_string e);
                    ignore (Rc_util.Jsonout.to_string (Report.to_json e)))
                  (Driver.errors t)
            | exception e ->
                Alcotest.failf "%s: uncaught %s" file (Printexc.to_string e))
          corpus);
  ]

(* after all campaigns: disarmed + unlimited must equal the baseline *)
let equivalence_tests =
  [
    Alcotest.test_case
      "disarmed rerun matches baseline Figure 7 stats exactly" `Quick
      (fun () ->
        (* a fresh session has no campaign by construction *)
        Alcotest.(check bool) "fresh session unarmed" true
          (Rc_refinedc.Session.fault (session ()) = None);
        List.iter
          (fun file ->
            let t = Driver.check_file ~session:(session ()) (path file) in
            (match Driver.errors t with
            | [] -> ()
            | (fn, e) :: _ ->
                Alcotest.failf "%s/%s no longer verifies: %s" file fn
                  (Report.to_string e));
            let before =
              match List.assoc_opt file !baseline with
              | Some fp -> fp
              | None -> Alcotest.failf "no baseline for %s" file
            in
            if fingerprint t <> before then
              Alcotest.failf "%s: stats differ from baseline" file)
          corpus);
  ]

let () =
  Alcotest.run "robustness"
    [
      ("jsonout", jsonout_tests);
      ("budget", budget_tests);
      ("isolation", isolation_tests);
      ("baseline", baseline_tests);
      ("campaigns", campaign_tests);
      ("equivalence", equivalence_tests);
    ]

#!/usr/bin/env bash
# CI lint for the session refactor: lib/ must not (re)grow top-level
# mutable state.  Every piece of configuration travels inside a
# verification session (lib/refinedc/session.ml, lib/session/), which is
# what makes `-j N` race-free by construction and lets two differently
# configured sessions coexist in one process.  A top-level
# `let x = ref …` or `let x = Hashtbl.create …` would reintroduce
# process-global state behind the session's back, so it fails the build.
#
# The check is purely syntactic: a column-0 `let` that binds a *value*
# (no parameters before the `=`) directly to `ref` or `Hashtbl.create`.
# Functions returning fresh state (`let create () = Hashtbl.create …`)
# are fine — they mint per-session state, they don't share it.
#
# Allowlist: immutable-after-init globals that are documented in
# DESIGN.md §6 may be listed below as `<path-suffix>:<binding-name>`.
# The list is currently empty — keep it that way if you can.

set -u

LIB_DIR="${1:-lib}"

ALLOWLIST=(
  # e.g. "refinedc/rules.ml:builtin_table"
)

# column-0 `let name [: type] = ref …` or `… = Hashtbl.create …`
# (binder charset excludes `(`, so function definitions don't match)
PATTERN='^let +[a-z_][A-Za-z0-9_'"'"']* *(: *[^=()]*)?= *(ref[ (]|Hashtbl\.create)'

violations=$(grep -rnE --include='*.ml' "$PATTERN" "$LIB_DIR" || true)

if [ -n "$violations" ]; then
  filtered=""
  while IFS= read -r line; do
    allowed=0
    for entry in ${ALLOWLIST[@]+"${ALLOWLIST[@]}"}; do
      path_suffix="${entry%%:*}"
      name="${entry##*:}"
      case "$line" in
        *"$path_suffix"*"let $name"*) allowed=1 ;;
      esac
    done
    [ "$allowed" -eq 0 ] && filtered="$filtered$line"$'\n'
  done <<<"$violations"
  if [ -n "${filtered//[$'\n']/}" ]; then
    echo "lint_globals: top-level mutable state in lib/ outside the allowlist:" >&2
    printf '%s' "$filtered" >&2
    echo "Thread the state through the verification session instead" >&2
    echo "(lib/refinedc/session.ml; see README \"Architecture\" and DESIGN.md §6)." >&2
    exit 1
  fi
fi

echo "lint_globals: OK (no top-level mutable state in $LIB_DIR)"

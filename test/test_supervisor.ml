(* The supervised persistent worker pool (ISSUE 6).

   Contract under test:
   - [Supervisor.run] preserves input order and isolates per-task
     crashes ([Stack_overflow] included) as structured [Fault]s;
   - transient faults are retried with backoff and converge; retry
     exhaustion reports the attempt count; deterministic results are
     never retried;
   - whole-run deadlines and cooperative cancellation stop *starting*
     tasks, resolving the rest as [Not_run] — completed results are
     never discarded;
   - an injected worker crash at the ["pool.dispatch"] chaos site is
     absorbed by respawn + redispatch; exhausting the respawn allowance
     degrades the pool to the calling domain, which still completes the
     batch;
   - at the driver level, a chaos campaign over the corpus at the new
     pool/cache sites never changes any non-faulted verdict, [-j 1] and
     [-j 4] agree under injection, and deadline/cancel produce partial
     reports with the documented exit codes. *)

module Supervisor = Rc_util.Supervisor
module Faultsim = Rc_util.Faultsim
module Driver = Rc_frontend.Driver
module Report = Rc_lithium.Report
module Session = Rc_refinedc.Session

let session () = Rc_studies.Studies.session ()

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let corpus =
  [
    "linked_list.c"; "queue.c"; "binary_search.c"; "talloc.c";
    "page_alloc.c"; "bst_layered.c"; "bst_direct.c"; "hashmap.c";
    "mpool.c"; "spinlock.c"; "barrier.c";
  ]

let path f = Filename.concat case_dir f

let with_pool ?jobs ?max_respawns k =
  let p = Supervisor.create ?jobs ?max_respawns () in
  Fun.protect ~finally:(fun () -> Supervisor.shutdown p) (fun () -> k p)

let value_exn = function
  | Supervisor.Done v -> v
  | Supervisor.Fault f -> Alcotest.failf "unexpected fault: %s" f.f_exn
  | Supervisor.Not_run _ -> Alcotest.fail "unexpected Not_run"

(* ---------------------------------------------------------------- *)
(* Unit: the supervisor engine                                       *)
(* ---------------------------------------------------------------- *)

let unit_tests =
  [
    Alcotest.test_case "run preserves input order" `Quick (fun () ->
        with_pool ~jobs:4 (fun p ->
            let xs = List.init 100 Fun.id in
            let outs, stats = Supervisor.run p succ xs in
            Alcotest.(check (list int))
              "order" (List.map succ xs) (List.map value_exn outs);
            Alcotest.(check int) "no retries" 0 stats.Supervisor.rs_retries;
            Alcotest.(check int) "no crashes" 0 stats.Supervisor.rs_crashes;
            Alcotest.(check bool)
              "not degraded" false stats.Supervisor.rs_degraded));
    Alcotest.test_case "a crashing task is confined to its slot" `Quick
      (fun () ->
        with_pool ~jobs:4 (fun p ->
            let outs, stats =
              Supervisor.run p
                (fun i -> if i = 37 then failwith "boom" else i)
                (List.init 100 Fun.id)
            in
            List.iteri
              (fun i o ->
                match o with
                | Supervisor.Done v -> Alcotest.(check int) "value" i v
                | Supervisor.Fault f ->
                    Alcotest.(check int) "only 37 faults" 37 i;
                    Alcotest.(check int) "one attempt" 1 f.Supervisor.f_attempts
                | Supervisor.Not_run _ -> Alcotest.fail "Not_run")
              outs;
            Alcotest.(check int) "one task fault" 1
              stats.Supervisor.rs_task_faults));
    Alcotest.test_case "Stack_overflow is isolated too" `Quick (fun () ->
        with_pool ~jobs:2 (fun p ->
            let rec blow (n : int) : int = 1 + blow (n + 1) in
            let outs, _ =
              Supervisor.run p
                (fun i -> if i = 1 then blow 0 else i)
                [ 0; 1; 2 ]
            in
            match outs with
            | [ Supervisor.Done 0; Supervisor.Fault f; Supervisor.Done 2 ] ->
                Alcotest.(check bool) "names the overflow" true
                  (f.Supervisor.f_exn = Printexc.to_string Stack_overflow)
            | _ -> Alcotest.fail "wrong shape"));
    Alcotest.test_case "transient exceptions are retried and converge"
      `Quick (fun () ->
        let attempts = Array.make 5 0 in
        let outs, stats =
          Supervisor.run_seq ~retries:3
            ~is_transient:(function Failure _ -> true | _ -> false)
            (fun i ->
              attempts.(i) <- attempts.(i) + 1;
              if i = 2 && attempts.(i) <= 2 then failwith "flaky" else i)
            (List.init 5 Fun.id)
        in
        Alcotest.(check (list int))
          "all converge" [ 0; 1; 2; 3; 4 ] (List.map value_exn outs);
        Alcotest.(check int) "two retries" 2 stats.Supervisor.rs_retries;
        Alcotest.(check int) "third attempt won" 3 attempts.(2));
    Alcotest.test_case "retry exhaustion reports the attempt count" `Quick
      (fun () ->
        let outs, stats =
          Supervisor.run_seq ~retries:2
            ~is_transient:(fun _ -> true)
            (fun () -> failwith "always")
            [ () ]
        in
        (match outs with
        | [ Supervisor.Fault f ] ->
            Alcotest.(check int) "attempts" 3 f.Supervisor.f_attempts
        | _ -> Alcotest.fail "expected one fault");
        Alcotest.(check int) "retries counted" 2 stats.Supervisor.rs_retries);
    Alcotest.test_case "deterministic results are never retried" `Quick
      (fun () ->
        let calls = ref 0 in
        let outs, stats =
          Supervisor.run_seq ~retries:5
            ~should_retry:(fun _ -> false)
            (fun i ->
              incr calls;
              i * 2)
            [ 1; 2; 3 ]
        in
        Alcotest.(check (list int)) "values" [ 2; 4; 6 ]
          (List.map value_exn outs);
        Alcotest.(check int) "one call each" 3 !calls;
        Alcotest.(check int) "no retries" 0 stats.Supervisor.rs_retries);
    Alcotest.test_case "deadline stops starting tasks" `Quick (fun () ->
        let outs, stats =
          Supervisor.run_seq ~deadline:0.02
            (fun i ->
              Unix.sleepf 0.03;
              i)
            (List.init 5 Fun.id)
        in
        let done_, not_run =
          List.partition
            (function Supervisor.Done _ -> true | _ -> false)
            outs
        in
        Alcotest.(check bool) "some ran" true (done_ <> []);
        Alcotest.(check bool) "some skipped" true (not_run <> []);
        Alcotest.(check bool) "stopped by deadline" true
          (stats.Supervisor.rs_stop = Some Supervisor.Deadline);
        Alcotest.(check int) "accounted" (List.length not_run)
          stats.Supervisor.rs_not_run);
    Alcotest.test_case "cancel resolves the remainder as Not_run" `Quick
      (fun () ->
        let polls = ref 0 in
        let outs, stats =
          Supervisor.run_seq
            ~cancel:(fun () ->
              incr polls;
              !polls > 2)
            Fun.id (List.init 6 Fun.id)
        in
        let not_run =
          List.filter
            (function
              | Supervisor.Not_run Supervisor.Cancelled -> true | _ -> false)
            outs
        in
        Alcotest.(check int) "four cancelled" 4 (List.length not_run);
        Alcotest.(check bool) "stop reason" true
          (stats.Supervisor.rs_stop = Some Supervisor.Cancelled));
    Alcotest.test_case "cancellation interrupts a retry storm" `Quick
      (fun () ->
        (* a huge retry budget on a persistently-faulting task must not
           make the run uninterruptible: once cancel flips, the attempt
           loop gives up and keeps the last attempt's outcome *)
        let attempts = ref 0 in
        let outs, stats =
          Supervisor.run_seq ~retries:1_000_000
            ~cancel:(fun () -> !attempts >= 5)
            ~is_transient:(fun _ -> true)
            (fun () ->
              incr attempts;
              failwith "persistent")
            [ () ]
        in
        (match outs with
        | [ Supervisor.Fault f ] ->
            Alcotest.(check bool) "gave up early" true
              (f.Supervisor.f_attempts < 10)
        | _ -> Alcotest.fail "expected one fault");
        Alcotest.(check bool) "few retries" true
          (stats.Supervisor.rs_retries < 10));
    Alcotest.test_case "the deadline interrupts a retry storm" `Quick
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let outs, _ =
          Supervisor.run_seq ~retries:1_000_000 ~deadline:0.02
            ~is_transient:(fun _ -> true)
            (fun () -> failwith "persistent")
            [ () ]
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        (match outs with
        | [ Supervisor.Fault _ ] -> ()
        | _ -> Alcotest.fail "expected one fault");
        Alcotest.(check bool) "bounded by the deadline" true (elapsed < 2.));
    Alcotest.test_case "injected worker crashes respawn and redispatch"
      `Quick (fun () ->
        if not Supervisor.parallelism_available then Alcotest.skip ();
        with_pool ~jobs:2 (fun p ->
            let fault =
              Faultsim.create ~rate:1.0 ~sites:[ "pool.dispatch" ]
                ~max_faults:3 42
            in
            let outs, stats =
              Supervisor.run p ~fault succ (List.init 20 Fun.id)
            in
            Alcotest.(check (list int))
              "every task completes"
              (List.init 20 (fun i -> i + 1))
              (List.map value_exn outs);
            Alcotest.(check int) "three crashes" 3 stats.Supervisor.rs_crashes;
            Alcotest.(check int) "three respawns" 3
              stats.Supervisor.rs_respawns;
            Alcotest.(check bool)
              "still healthy" true
              (Supervisor.health p = Supervisor.Healthy)));
    Alcotest.test_case
      "respawn exhaustion degrades but the batch still completes" `Quick
      (fun () ->
        if not Supervisor.parallelism_available then Alcotest.skip ();
        with_pool ~jobs:2 ~max_respawns:0 (fun p ->
            let fault =
              Faultsim.create ~rate:1.0 ~sites:[ "pool.dispatch" ] 7
            in
            let outs, stats =
              Supervisor.run p ~fault succ (List.init 10 Fun.id)
            in
            Alcotest.(check (list int))
              "inline drain completes the batch"
              (List.init 10 (fun i -> i + 1))
              (List.map value_exn outs);
            Alcotest.(check bool) "degraded" true stats.Supervisor.rs_degraded;
            (match Supervisor.health p with
            | Supervisor.Degraded _ -> ()
            | Supervisor.Healthy -> Alcotest.fail "pool still healthy?");
            (* a degraded pool keeps working sequentially *)
            let outs2, stats2 = Supervisor.run p ~fault succ [ 1; 2; 3 ] in
            Alcotest.(check (list int))
              "subsequent runs too" [ 2; 3; 4 ] (List.map value_exn outs2);
            Alcotest.(check bool) "still degraded" true
              stats2.Supervisor.rs_degraded));
    Alcotest.test_case "a pool survives many batches" `Quick (fun () ->
        with_pool ~jobs:4 (fun p ->
            for round = 1 to 20 do
              let outs, _ =
                Supervisor.run p (fun i -> (i * round) + 1) (List.init 8 Fun.id)
              in
              Alcotest.(check (list int))
                "round values"
                (List.init 8 (fun i -> (i * round) + 1))
                (List.map value_exn outs)
            done));
  ]

(* ---------------------------------------------------------------- *)
(* Corpus chaos campaigns (driver level)                             *)
(* ---------------------------------------------------------------- *)

(* same observable signature as test_parallel: everything the CLI
   reports except wall-clock time *)
let outcome_signature (r : Driver.check_result) : string =
  match r.outcome with
  | Ok res ->
      let s = res.Rc_refinedc.Lang.E.stats in
      Fmt.str "%s:ok:apps=%d:evars=%d:side=%d/%d" r.name
        s.Rc_lithium.Stats.rule_apps s.Rc_lithium.Stats.evar_insts
        s.Rc_lithium.Stats.side_auto s.Rc_lithium.Stats.side_manual
  | Error e -> Fmt.str "%s:error:%s" r.name (Report.kind_label e.Report.kind)

let run_signature (t : Driver.t) : string list =
  List.map outcome_signature t.Driver.results
  @ List.map (fun fn -> fn ^ ":skipped") t.Driver.skipped

let chaos_session ?(retries = 0) ?pool ~sites ~rate ?max_faults seed =
  let campaign = Faultsim.create ~rate ~sites ?max_faults seed in
  let s = Session.with_fault (session ()) (Some campaign) in
  Session.with_exec s
    {
      Session.default_exec with
      Session.x_retries = retries;
      Session.x_pool = pool;
    }

(* an explicit session pool: the driver honours it as-is (no hardware
   clamp), so worker-crash injection is exercised even on a single-core
   host where a plain [~jobs:4] would degrade to inline execution *)
let with_session_pool k =
  if Supervisor.parallelism_available then
    let p = Supervisor.create ~jobs:4 () in
    Fun.protect ~finally:(fun () -> Supervisor.shutdown p) (fun () ->
        k (Some p))
  else k None

let fresh_cache tag =
  Rc_util.Vercache.create (Testutil.scratch_dir ("supcache_" ^ tag))

(* (a) injected pool crashes and cache corruption never change a
   verdict: every function of the chaos run must report exactly the
   fault-free verdict — these sites only cost redispatches and cache
   misses, never checker faults *)
let verdict_equivalence_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let clean = Driver.check_file ~session:(session ()) (path file) in
          with_session_pool (fun pool ->
              let s =
                chaos_session ?pool
                  ~sites:[ "pool.dispatch"; "cache.read"; "cache.write" ]
                  ~rate:0.3 ~max_faults:8 1234
              in
              let cache = fresh_cache ("eq_" ^ file) in
              let chaos =
                Driver.check_file ~session:s ~jobs:4 ~cache (path file)
              in
              Alcotest.(check (list string))
                "verdicts identical under injection" (run_signature clean)
                (run_signature chaos);
              Alcotest.(check int)
                "exit codes agree" (Driver.exit_code clean)
                (Driver.exit_code chaos))))
    corpus

(* (b) transient solver faults converge under the retry policy: the
   campaign's injection cap is exhausted by the first attempts, the
   retries then re-prove cleanly *)
let retry_convergence_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let clean = Driver.check_file ~session:(session ()) (path file) in
          let s =
            chaos_session ~retries:3 ~sites:[ "solver" ] ~rate:1.0
              ~max_faults:2 99
          in
          let chaos = Driver.check_file ~session:s (path file) in
          Alcotest.(check (list string))
            "retried transients converge to the clean verdicts"
            (run_signature clean) (run_signature chaos);
          Alcotest.(check bool)
            "retries actually happened" true
            (chaos.Driver.exec_stats.Supervisor.rs_retries >= 1)))
    (* spinlock/barrier never reach a named solver, so they cannot
       exercise the "solver" site — use studies that do *)
    [ "linked_list.c"; "hashmap.c"; "queue.c" ]

(* (c) -j 1 and -j 4 agree under injection at the scheduling and cache
   sites: identically-configured (separately-owned) campaigns, same
   verdict signatures *)
let jobs_equivalence_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let run ?pool jobs tag =
            let s =
              chaos_session ?pool
                ~sites:[ "pool.dispatch"; "cache.read"; "cache.write" ]
                ~rate:0.25 ~max_faults:6 555
            in
            let cache = fresh_cache (Fmt.str "j%s_%s" tag file) in
            Driver.check_file ~session:s ~jobs ~cache (path file)
          in
          let seq = run 1 "1" in
          let par = with_session_pool (fun pool -> run ?pool 4 "4") in
          Alcotest.(check (list string))
            "-j1 = -j4 under injection" (run_signature seq)
            (run_signature par);
          Alcotest.(check int)
            "exit codes agree" (Driver.exit_code seq) (Driver.exit_code par)))
    corpus

(* ---------------------------------------------------------------- *)
(* Partial reports: deadline and cancellation                        *)
(* ---------------------------------------------------------------- *)

let partial_report_tests =
  [
    Alcotest.test_case "hit deadline yields a partial report, exit 2" `Quick
      (fun () ->
        let s =
          Session.with_exec (session ())
            { Session.default_exec with Session.x_deadline = Some 1e-6 }
        in
        let t = Driver.check_file ~session:s (path "hashmap.c") in
        Alcotest.(check bool) "stopped by deadline" true
          (t.Driver.stop = Driver.Deadline);
        Alcotest.(check bool) "skipped listed" true (t.Driver.skipped <> []);
        Alcotest.(check int) "exit 2" 2 (Driver.exit_code t);
        let j = Rc_util.Jsonout.to_string (Driver.to_json t) in
        Alcotest.(check bool) "json says deadline" true
          (let re = Str.regexp_string "\"stop\":\"deadline\"" in
           try
             ignore (Str.search_forward re j 0);
             true
           with Not_found -> false));
    Alcotest.test_case "cancellation keeps completed verdicts, exit 130"
      `Quick (fun () ->
        let polls = ref 0 in
        let s =
          Session.with_exec (session ())
            {
              Session.default_exec with
              Session.x_cancel =
                Some
                  (fun () ->
                    incr polls;
                    !polls > 1);
            }
        in
        let t = Driver.check_file ~session:s (path "hashmap.c") in
        Alcotest.(check bool) "interrupted" true
          (t.Driver.stop = Driver.Interrupted);
        Alcotest.(check int) "one completed verdict" 1
          (List.length t.Driver.results);
        Alcotest.(check bool) "its verdict is intact" true
          (List.for_all
             (fun (r : Driver.check_result) -> Result.is_ok r.outcome)
             t.Driver.results);
        Alcotest.(check int) "exit 130" 130 (Driver.exit_code t);
        let j = Rc_util.Jsonout.to_string (Driver.to_json t) in
        Alcotest.(check bool) "json interrupted flag" true
          (let re = Str.regexp_string "\"interrupted\":true" in
           try
             ignore (Str.search_forward re j 0);
             true
           with Not_found -> false));
    Alcotest.test_case "no deadline, no cancel: exec stats are all zero"
      `Quick (fun () ->
        let t = Driver.check_file ~session:(session ()) (path "queue.c") in
        let e = t.Driver.exec_stats in
        Alcotest.(check int) "retries" 0 e.Supervisor.rs_retries;
        Alcotest.(check int) "crashes" 0 e.Supervisor.rs_crashes;
        Alcotest.(check int) "not_run" 0 e.Supervisor.rs_not_run;
        Alcotest.(check bool) "not degraded" false e.Supervisor.rs_degraded;
        Alcotest.(check bool) "completed" true (t.Driver.stop = Driver.Completed));
  ]

let () =
  Alcotest.run "supervisor"
    [
      ("unit", unit_tests);
      ("verdict-equivalence", verdict_equivalence_tests);
      ("retry-convergence", retry_convergence_tests);
      ("jobs-equivalence", jobs_equivalence_tests);
      ("partial-reports", partial_report_tests);
    ]

(* The persistent run ledger and its query layer.

   Contracts under test:
   - the JSON reader round-trips everything the printer emits (the
     toolchain is now a reader of its own records);
   - appends are atomic at the line level: concurrent appenders — one
     ledger handle per domain, as with concurrent CLI invocations —
     interleave whole lines, never fragments;
   - the reader skips corrupt lines instead of aborting, and counts
     them for diagnostics;
   - an unusable directory degrades to a disabled ledger (never an
     abort);
   - the trailing-window median-of-ratios regression check flags real
     slowdowns and tolerates a noisy baseline;
   - [Driver.runlog_record] carries the fields [refinedc stats] reads. *)

module J = Rc_util.Jsonout
module Runlog = Rc_util.Runlog

let json = Alcotest.testable (Fmt.of_to_string J.to_string) ( = )

let parse_ok s =
  match J.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse failed on %s: %s" s msg

let sample_record i =
  J.Obj
    [
      ("schema", J.Str Runlog.schema_version);
      ("kind", J.Str "check");
      ("seq", J.Int i);
      ("wall_s", J.Float (0.25 +. (0.01 *. float_of_int i)));
      ("nested", J.Obj [ ("xs", J.List [ J.Int 1; J.Null; J.Bool true ]) ]);
      ("label", J.Str "quote\" slash\\ tab\tnewline\n");
    ]

let parser_tests =
  [
    Alcotest.test_case "parse round-trips printer output" `Quick (fun () ->
        List.iter
          (fun v ->
            Alcotest.check json "to_string round-trip" v
              (parse_ok (J.to_string v));
            Alcotest.check json "to_line round-trip" v
              (parse_ok (J.to_line v)))
          [
            J.Null;
            J.Bool false;
            J.Int (-42);
            J.Str "päivää \x01 ok";
            J.List [];
            J.Obj [];
            sample_record 7;
          ]);
    Alcotest.test_case "to_line never wraps" `Quick (fun () ->
        let wide =
          J.Obj
            (List.init 64 (fun i ->
                 (Printf.sprintf "field_%02d" i, sample_record i)))
        in
        Alcotest.(check bool)
          "single line" false
          (String.contains (J.to_line wide) '\n'));
    Alcotest.test_case "parse rejects garbage" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) ("rejects " ^ s) true
              (Result.is_error (J.parse s)))
          [ "{"; "[1,"; "tru"; "\"unterminated"; "{} trailing"; "" ]);
    Alcotest.test_case "numbers split int/float like the printer" `Quick
      (fun () ->
        Alcotest.check json "int" (J.Int 5) (parse_ok "5");
        Alcotest.check json "float" (J.Float 5.5) (parse_ok "5.5");
        Alcotest.check json "exponent is float" (J.Float 1e3) (parse_ok "1e3"));
  ]

let ledger_tests =
  [
    Alcotest.test_case "append/load preserves order" `Quick (fun () ->
        let lg = Runlog.create (Testutil.scratch_dir "runlog") in
        List.iter (fun i -> Runlog.append lg (sample_record i)) [ 1; 2; 3 ];
        let seqs =
          List.filter_map
            (fun r -> Option.bind (J.member "seq" r) J.to_int)
            (Runlog.load lg)
        in
        Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] seqs);
    Alcotest.test_case "corrupt lines are skipped and counted" `Quick
      (fun () ->
        let lg = Runlog.create (Testutil.scratch_dir "runlog") in
        Runlog.append lg (sample_record 1);
        Out_channel.with_open_gen
          [ Open_append; Open_creat ] 0o644 (Runlog.path lg)
          (fun oc -> Out_channel.output_string oc "{torn writ\n");
        Runlog.append lg (sample_record 2);
        Alcotest.(check int) "records" 2 (List.length (Runlog.load lg));
        Alcotest.(check int) "corrupt" 1 (Runlog.corrupt_lines lg));
    Alcotest.test_case "unusable directory degrades to disabled" `Quick
      (fun () ->
        let file = Filename.temp_file "rc-runlog-notadir" "" in
        let lg = Runlog.create file in
        Alcotest.(check bool) "disabled" true (Runlog.disabled lg);
        Runlog.append lg (sample_record 1);
        Alcotest.(check int) "load empty" 0 (List.length (Runlog.load lg));
        Sys.remove file);
    Alcotest.test_case "concurrent appenders interleave whole lines" `Quick
      (fun () ->
        let dir = Testutil.scratch_dir "runlog" in
        let per_worker = 25 and workers = 4 in
        let work w () =
          (* one handle per appender, as with concurrent CLI runs *)
          let lg = Runlog.create dir in
          for i = 1 to per_worker do
            Runlog.append lg (sample_record ((w * 1000) + i))
          done
        in
        if Rc_util.Pool.parallelism_available then
          List.init workers (fun w -> Domain.spawn (work w))
          |> List.iter Domain.join
        else List.init workers work |> List.iteri (fun _ f -> f ());
        let lg = Runlog.create dir in
        Alcotest.(check int)
          "no torn lines" 0 (Runlog.corrupt_lines lg);
        Alcotest.(check int)
          "every record present" (workers * per_worker)
          (List.length (Runlog.load lg)));
  ]

let regression_tests =
  let reg ?window ?threshold series =
    Runlog.regression ?window ?threshold series
  in
  [
    Alcotest.test_case "flat series does not regress" `Quick (fun () ->
        match reg [ 100.; 101.; 99.; 100.; 100. ] with
        | Some g ->
            Alcotest.(check bool) "not regressed" false g.Runlog.r_regressed
        | None -> Alcotest.fail "expected a verdict");
    Alcotest.test_case "a real slowdown is flagged" `Quick (fun () ->
        match reg [ 100.; 101.; 99.; 100.; 20. ] with
        | Some g ->
            Alcotest.(check bool) "regressed" true g.Runlog.r_regressed;
            Alcotest.(check int) "window" 4 g.Runlog.r_window
        | None -> Alcotest.fail "expected a verdict");
    Alcotest.test_case "one noisy baseline run does not mask" `Quick
      (fun () ->
        (* median-of-ratios: a single absurdly slow baseline point must
           not excuse a 5x slowdown *)
        match reg [ 100.; 5.; 100.; 100.; 20. ] with
        | Some g ->
            Alcotest.(check bool) "regressed" true g.Runlog.r_regressed
        | None -> Alcotest.fail "expected a verdict");
    Alcotest.test_case "speedups never flag" `Quick (fun () ->
        match reg [ 100.; 100.; 300. ] with
        | Some g ->
            Alcotest.(check bool) "not regressed" false g.Runlog.r_regressed
        | None -> Alcotest.fail "expected a verdict");
    Alcotest.test_case "short or empty series yield no verdict" `Quick
      (fun () ->
        Alcotest.(check bool) "empty" true (reg [] = None);
        Alcotest.(check bool) "singleton" true (reg [ 100. ] = None);
        (* non-positive points (absent data) are ignored, not ratios *)
        Alcotest.(check bool) "zeros only" true (reg [ 0.; 0. ] = None));
    Alcotest.test_case "percentiles interpolate" `Quick (fun () ->
        let xs = [ 1.; 2.; 3.; 4. ] in
        Alcotest.(check (option (float 1e-9)))
          "median" (Some 2.5) (Runlog.median xs);
        Alcotest.(check (option (float 1e-9)))
          "p95" (Some 3.85)
          (Runlog.percentile 0.95 xs);
        Alcotest.(check (option (float 1e-9)))
          "empty" None (Runlog.median []));
  ]

(* The driver-level record: the fields [refinedc stats] trends on must
   be present and consistent with the run. *)
let record_tests =
  [
    Alcotest.test_case "runlog_record carries the stats surface" `Quick
      (fun () ->
        let module Driver = Rc_frontend.Driver in
        let session = Rc_session.Refinedc_api.create_session ~case_studies:true () in
        let src =
          {|
[[rc::parameters("x: int", "y: int")]]
[[rc::args("x @ int<int>", "y @ int<int>")]]
[[rc::returns("(x <= y ? x : y) @ int<int>")]]
int imin(int a, int b) {
  if (a <= b) return a;
  return b;
}
|}
        in
        let t = Driver.check_source ~session ~file:"imin.c" src in
        let r = Driver.runlog_record ~session ~wall_s:0.5 t in
        let get k = J.member k r in
        Alcotest.(check (option string))
          "schema" (Some Runlog.schema_version)
          (Option.bind (get "schema") J.to_str);
        Alcotest.(check (option string))
          "kind" (Some "check")
          (Option.bind (get "kind") J.to_str);
        let apps =
          Option.get (Option.bind (get "rule_apps") J.to_int)
        in
        Alcotest.(check bool) "rule apps positive" true (apps > 0);
        Alcotest.(check (option (float 1e-6)))
          "apps/sec = apps ÷ wall"
          (Some (float_of_int apps /. 0.5))
          (J.number_member "apps_per_sec" r);
        let verdicts = Option.get (get "verdicts") in
        Alcotest.(check (option int))
          "verified count" (Some 1)
          (Option.bind (J.member "verified" verdicts) J.to_int);
        (* the record parses back from its NDJSON line form *)
        Alcotest.check json "line round-trip" r (parse_ok (J.to_line r)));
  ]

let () =
  Alcotest.run "runlog"
    [
      ("json parser", parser_tests);
      ("ledger", ledger_tests);
      ("regression", regression_tests);
      ("driver record", record_tests);
    ]

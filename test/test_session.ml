(* Reentrancy of the session-threaded pipeline (the tentpole property of
   the session refactor): sessions are self-contained values, so

   - construction is pure: building a session — however exotic its
     configuration — observably changes nothing outside it;
   - two sessions with disjoint extra rules, solver registries, and
     ablation flags produce independent verdicts and stats, whether they
     run interleaved on one domain or concurrently on two;
   - a session's behaviour is deterministic and unaffected by what other
     sessions do in between its runs. *)

open Rc_pure.Term
module Api = Rc_session.Refinedc_api
module Driver = Rc_frontend.Driver
module Session = Rc_refinedc.Session
module Registry = Rc_pure.Registry

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let path f = Filename.concat case_dir f

(* a small source whose functions verify under any stock configuration *)
let small_src =
  {|
[[rc::parameters("x: int")]]
[[rc::args("x @ int<int>")]]
[[rc::requires("{x <= 100}")]]
[[rc::returns("(x + 1) @ int<int>")]]
int incr(int a) { return a + 1; }
|}

(* a goal only the multiset solver proves, as an inert extra lemma *)
let mset_lemma =
  {
    Registry.lname = "test_session_lemma";
    vars = [ ("n", Rc_pure.Sort.Int) ];
    premises = [];
    concl =
      PEq (Var ("n", Rc_pure.Sort.Int), Var ("n", Rc_pure.Sort.Int));
  }

let never_fires_rule =
  {
    Rc_refinedc.Lang.E.rname = "TEST-SESSION-NEVER-FIRES";
    prio = 1000;
    heads = Some [ "no-such-judgment-head" ];
    apply = (fun _ _ -> None);
  }

let even_def =
  let open Rc_refinedc.Rtype in
  {
    td_name = "test_even";
    td_params = [ ("n", Rc_pure.Sort.Int) ];
    td_layout = Some (Rc_caesium.Layout.Int Rc_caesium.Int_type.i32);
    td_unfold =
      (function
      | [ n ] ->
          TConstr
            (TInt (Rc_caesium.Int_type.i32, n), PEq (Mod (n, Num 2), Num 0))
      | _ -> invalid_arg "test_even arity");
  }

let outcome_signature (t : Driver.t) =
  List.map
    (fun (r : Driver.check_result) ->
      ( r.name,
        match r.outcome with
        | Ok res ->
            let s = res.Rc_refinedc.Lang.E.stats in
            Fmt.str "ok:%d:%d" s.Rc_lithium.Stats.rule_apps
              s.Rc_lithium.Stats.evar_insts
        | Error e ->
            Fmt.str "error:%s" (Rc_lithium.Report.kind_label e.Rc_lithium.Report.kind) ))
    t.Driver.results

let purity_tests =
  [
    Alcotest.test_case "construction has no observable side effects" `Quick
      (fun () ->
        let before_lemmas = List.length Registry.default.Registry.lemmas in
        let before_solvers = List.length Registry.default.Registry.solvers in
        let exotic =
          Api.create_session ~case_studies:true ~rules:[ never_fires_rule ]
            ~lemmas:[ mset_lemma ] ~type_defs:[ even_def ]
            ~default_only:false ~no_goal_simp:true ()
        in
        ignore exotic;
        Alcotest.(check int) "default registry lemmas untouched"
          before_lemmas
          (List.length Registry.default.Registry.lemmas);
        Alcotest.(check int) "default registry solvers untouched"
          before_solvers
          (List.length Registry.default.Registry.solvers);
        (* a stock session built *after* the exotic one sees none of it *)
        let stock = Api.create_session () in
        Alcotest.(check bool) "no leaked type defs" false
          (Hashtbl.mem stock.Session.tenv "test_even");
        Alcotest.(check int) "no leaked extra rules" 0
          (List.length stock.Session.extra_rules);
        Alcotest.(check int) "no leaked lemmas" 0
          (List.length stock.Session.registry.Registry.lemmas));
    Alcotest.test_case "disjoint configurations stay disjoint" `Quick
      (fun () ->
        let sa =
          Api.create_session ~rules:[ never_fires_rule ]
            ~type_defs:[ even_def ] ()
        in
        let sb = Api.create_session ~lemmas:[ mset_lemma ] () in
        Alcotest.(check bool) "A has its rule" true
          (List.mem "TEST-SESSION-NEVER-FIRES"
             (Rc_cert.Checker.rule_table sa));
        Alcotest.(check bool) "B does not" false
          (List.mem "TEST-SESSION-NEVER-FIRES"
             (Rc_cert.Checker.rule_table sb));
        Alcotest.(check bool) "A has its type" true
          (Hashtbl.mem sa.Session.tenv "test_even");
        Alcotest.(check bool) "B does not have A's type" false
          (Hashtbl.mem sb.Session.tenv "test_even");
        Alcotest.(check bool) "B has its lemma" true
          (List.exists
             (fun (l : Registry.lemma) -> l.Registry.lname = "test_session_lemma")
             sb.Session.registry.Registry.lemmas);
        Alcotest.(check bool) "A does not have B's lemma" false
          (List.exists
             (fun (l : Registry.lemma) -> l.Registry.lname = "test_session_lemma")
             sa.Session.registry.Registry.lemmas));
  ]

(* Two sessions with opposite ablation configs checking the same file:
   the full session verifies it, the ablated one must fail — whichever
   order, interleaving, or domain they run on. *)
let independence_tests =
  let file = "hashmap.c" in
  let full () = Api.create_session ~case_studies:true () in
  let ablated () =
    Api.create_session ~case_studies:true ~default_only:true ()
  in
  let run s = Driver.check_file ~session:s (path file) in
  let expect_full t = Alcotest.(check bool) "full verifies" true (Driver.all_ok t) in
  let expect_ablated t =
    Alcotest.(check bool) "ablated fails" false (Driver.all_ok t)
  in
  [
    Alcotest.test_case "interleaved on one domain" `Quick (fun () ->
        (* A, B, A again: B's run must not perturb A's verdicts/stats *)
        let a1 = run (full ()) in
        let b1 = run (ablated ()) in
        let a2 = run (full ()) in
        expect_full a1;
        expect_ablated b1;
        expect_full a2;
        Alcotest.(check (list (pair string string)))
          "A's outcomes are reproducible around B"
          (outcome_signature a1) (outcome_signature a2));
    Alcotest.test_case "concurrently on two domains" `Quick (fun () ->
        (* on OCaml 4.x the pool degrades to List.map; still a valid
           independence check, just not a concurrent one *)
        let results =
          Rc_util.Pool.map ~jobs:2
            (fun ablate -> if ablate then run (ablated ()) else run (full ()))
            [ false; true ]
        in
        match results with
        | [ ta; tb ] ->
            expect_full ta;
            expect_ablated tb;
            (* the concurrent full run equals a solo full run exactly *)
            Alcotest.(check (list (pair string string)))
              "concurrent run matches solo run" (outcome_signature (run (full ())))
              (outcome_signature ta)
        | _ -> assert false);
    Alcotest.test_case "per-session budgets give per-session verdicts"
      `Quick (fun () ->
        let starved =
          Api.create_session
            ~budget:{ Rc_util.Budget.unlimited with fuel = Some 5 } ()
        in
        let roomy = Api.create_session () in
        let run s = Driver.check_source ~session:s ~file:"small.c" small_src in
        let t1 = run starved in
        let t2 = run roomy in
        Alcotest.(check bool) "starved fails" false (Driver.all_ok t1);
        Alcotest.(check bool) "roomy verifies" true (Driver.all_ok t2));
  ]

let () =
  Alcotest.run "session"
    [
      ("purity", purity_tests);
      ("independence", independence_tests);
    ]

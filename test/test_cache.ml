(* Correctness of the content-addressed verification cache: a cached run
   replays verdicts only when *nothing* the verdict depends on changed.
   Each test drives [Driver.check_source] against a fresh cache directory
   and inspects the (hits, misses) counters.

   The cache key covers the function's dependency cone: its Caesium
   body, its own spec, its loop invariants, the specs of its *direct*
   callees (a call's premise reads the callee's spec; transitive callees
   are covered inductively), the rule-set fingerprint, the solver and
   lemma registry, registered type definitions, ablation switches, and
   the resource budget.  With [~incremental:false] the key digests every
   sibling spec instead (whole-file invalidation). *)

module Driver = Rc_frontend.Driver
module Api = Rc_session.Refinedc_api

let fresh_cache_dir () = Testutil.scratch_dir "vercache"

let src =
  {|
[[rc::parameters("x: int", "y: int")]]
[[rc::args("x @ int<int>", "y @ int<int>")]]
[[rc::returns("(x <= y ? x : y) @ int<int>")]]
int imin(int a, int b) {
  if (a <= b) return a;
  return b;
}

[[rc::parameters("x: nat")]]
[[rc::args("x @ int<int>")]]
[[rc::requires("{x <= 1000}")]]
[[rc::returns("(x + 1) @ int<int>")]]
int incr_small(int n) {
  return n + 1;
}
|}

(* the same program with one function *body* edited (still verifies) *)
let src_body_edit =
  Rc_util.Xstring.replace_first src ~sub:"if (a <= b) return a;\n  return b;"
    ~by:"if (b < a) return b;\n  return a;"

(* the same program with one *spec* edited (bodies untouched) *)
let src_spec_edit =
  Rc_util.Xstring.replace_first src ~sub:{|"{x <= 1000}"|} ~by:{|"{x <= 999}"|}

(* Each call builds a fresh stock session; cache keys depend only on the
   session's *configuration*, so two identically-configured sessions
   share verdicts while any config difference forces a miss. *)
let check ?session ?budget ~cache src =
  Driver.check_source ?session ?budget ~cache ~file:"cache_test.c" src

let counters (t : Driver.t) =
  match t.Driver.cache_stats with
  | Some hm -> hm
  | None -> Alcotest.fail "expected cache statistics"

let all_ok (t : Driver.t) =
  Driver.errors t = [] && t.Driver.skipped = []

let expect name ~hits ~misses t =
  if not (all_ok t) then Alcotest.failf "%s: verification failed" name;
  Alcotest.(check (pair int int)) name (hits, misses) (counters t)

let cache_tests =
  [
    Alcotest.test_case "unchanged input hits" `Quick (fun () ->
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "cold run misses" ~hits:0 ~misses:2 (check ~cache src);
        expect "warm run hits" ~hits:2 ~misses:0 (check ~cache src);
        Alcotest.(check int) "entries on disk" 2 (Rc_util.Vercache.entries cache));
    Alcotest.test_case "cached verdicts equal fresh verdicts" `Quick (fun () ->
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        let fresh = check ~cache src in
        let warm = check ~cache src in
        let sig_of (t : Driver.t) =
          List.map
            (fun (r : Driver.check_result) ->
              match r.outcome with
              | Ok res ->
                  let s = res.Rc_refinedc.Lang.E.stats in
                  Fmt.str "%s:ok:%d:%d" r.name s.Rc_lithium.Stats.rule_apps
                    s.Rc_lithium.Stats.evar_insts
              | Error e ->
                  Fmt.str "%s:error:%s" r.name (Rc_lithium.Report.to_string e))
            t.Driver.results
        in
        Alcotest.(check (list string)) "verdicts" (sig_of fresh) (sig_of warm);
        Alcotest.(check int) "exit codes" (Driver.exit_code fresh)
          (Driver.exit_code warm));
    Alcotest.test_case "body edit misses" `Quick (fun () ->
        Alcotest.(check bool) "fixture differs" true (src <> src_body_edit);
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "cold" ~hits:0 ~misses:2 (check ~cache src);
        (* the edited function misses; its sibling's body and all specs
           are unchanged, so the sibling still hits *)
        expect "after body edit" ~hits:1 ~misses:1
          (check ~cache src_body_edit));
    Alcotest.test_case "spec-only edit dirties only its cone" `Quick (fun () ->
        Alcotest.(check bool) "fixture differs" true (src <> src_spec_edit);
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "cold" ~hits:0 ~misses:2 (check ~cache src);
        (* incr_small has no callers, so editing its spec re-proves it
           alone — imin's cone never mentions incr_small (early cutoff
           at spec granularity; exhaustive cone tests live in
           test_incremental.ml) *)
        expect "after spec edit" ~hits:1 ~misses:1
          (check ~cache src_spec_edit);
        (* legacy whole-file keying (--no-incremental) still
           conservatively invalidates everything: its key digests ALL
           sibling specs *)
        let legacy () = Api.create_session ~incremental:false () in
        let cache2 = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "legacy cold" ~hits:0 ~misses:2
          (check ~session:(legacy ()) ~cache:cache2 src);
        expect "legacy warm hits" ~hits:2 ~misses:0
          (check ~session:(legacy ()) ~cache:cache2 src);
        expect "legacy spec edit misses everything" ~hits:0 ~misses:2
          (check ~session:(legacy ()) ~cache:cache2 src_spec_edit));
    Alcotest.test_case "rule-set change misses" `Quick (fun () ->
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "cold" ~hits:0 ~misses:2 (check ~cache src);
        (* a session with an extra rule has a different rule-set
           fingerprint even if the rule never fires (it only serves a
           head no goal has) *)
        let extra =
          Api.create_session
            ~rules:
              [
                {
                  Rc_refinedc.Lang.E.rname = "TEST-NEVER-FIRES";
                  prio = 1000;
                  heads = Some [ "no-such-judgment-head" ];
                  apply = (fun _ _ -> None);
                };
              ]
            ()
        in
        expect "extra-rule session misses" ~hits:0 ~misses:2
          (check ~session:extra ~cache src);
        (* a stock session restores the original fingerprint: hits again *)
        expect "stock session hits" ~hits:2 ~misses:0 (check ~cache src));
    Alcotest.test_case "solver/ablation config keys the cache" `Quick
      (fun () ->
        (* satellite of the session refactor: a verdict produced under
           one solver/ablation configuration must never be replayed for
           a session configured differently, even within one process and
           one cache directory *)
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "cold, stock config" ~hits:0 ~misses:2 (check ~cache src);
        expect "same config hits" ~hits:2 ~misses:0 (check ~cache src);
        let default_only = Api.create_session ~default_only:true () in
        expect "default-only ablation misses" ~hits:0 ~misses:2
          (check ~session:default_only ~cache src);
        let no_gs = Api.create_session ~no_goal_simp:true () in
        expect "no-goal-simp ablation misses" ~hits:0 ~misses:2
          (check ~session:no_gs ~cache src);
        let open Rc_pure.Term in
        let with_lemma =
          Api.create_session
            ~lemmas:
              [
                {
                  Rc_pure.Registry.lname = "test_cache_lemma";
                  vars = [ ("n", Rc_pure.Sort.Int) ];
                  premises = [];
                  concl = PEq (Var ("n", Rc_pure.Sort.Int),
                               Var ("n", Rc_pure.Sort.Int));
                };
              ]
            ()
        in
        expect "extra-lemma session misses" ~hits:0 ~misses:2
          (check ~session:with_lemma ~cache src);
        (* each ablated config warms its own entries *)
        expect "default-only warm hits" ~hits:2 ~misses:0
          (check ~session:(Api.create_session ~default_only:true ()) ~cache
             src);
        expect "stock config still hits" ~hits:2 ~misses:0
          (check ~cache src));
    Alcotest.test_case "budget change misses" `Quick (fun () ->
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        let b fuel = { Rc_util.Budget.unlimited with fuel = Some fuel } in
        expect "cold, fuel 100k" ~hits:0 ~misses:2
          (check ~budget:(b 100_000) ~cache src);
        expect "same fuel hits" ~hits:2 ~misses:0
          (check ~budget:(b 100_000) ~cache src);
        (* a verdict under one budget must not stand in for another *)
        expect "different fuel misses" ~hits:0 ~misses:2
          (check ~budget:(b 50_000) ~cache src);
        expect "no budget misses" ~hits:0 ~misses:2 (check ~cache src));
    Alcotest.test_case "lint config keys the cache" `Quick (fun () ->
        (* the lint configuration is part of the toolchain fingerprint:
           a verdict cached under one lint config (which decided that
           run's diagnostics and, under werror, its exit code) must not
           be replayed for a session linting differently *)
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        expect "cold, lint on (default)" ~hits:0 ~misses:2 (check ~cache src);
        expect "same lint config hits" ~hits:2 ~misses:0 (check ~cache src);
        let no_lint =
          Api.create_session
            ~lint:
              {
                Rc_refinedc.Session.l_enabled = false;
                l_passes = None;
                l_werror = false;
              }
            ()
        in
        expect "lint-disabled session misses" ~hits:0 ~misses:2
          (check ~session:no_lint ~cache src);
        let werror =
          Api.create_session
            ~lint:{ Rc_refinedc.Session.default_lint with l_werror = true }
            ()
        in
        expect "werror session misses" ~hits:0 ~misses:2
          (check ~session:werror ~cache src);
        let subset =
          Api.create_session
            ~lint:
              {
                Rc_refinedc.Session.default_lint with
                l_passes = Some [ "init"; "spec" ];
              }
            ()
        in
        expect "pass-subset session misses" ~hits:0 ~misses:2
          (check ~session:subset ~cache src);
        (* the default config's entries are still intact *)
        expect "default lint config still hits" ~hits:2 ~misses:0
          (check ~cache src));
    Alcotest.test_case "corrupt entry degrades to miss" `Quick (fun () ->
        let dir = fresh_cache_dir () in
        let cache = Rc_util.Vercache.create dir in
        expect "cold" ~hits:0 ~misses:2 (check ~cache src);
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".vc" then
              Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
                  Out_channel.output_string oc "garbage"))
          (Sys.readdir dir);
        expect "corrupt entries re-prove" ~hits:0 ~misses:2
          (check ~cache src));
  ]

(* Regression tests for the degradation contract (ISSUE 6): failed
   stores must not leak [*.tmp] orphans, stale orphans are collected on
   open, injected read/write faults degrade to miss/skip, and a
   persistently unwritable directory disables writes instead of paying
   for every store. *)

let tmp_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".tmp")

(* the on-disk name [store] will rename onto, mirroring [entry_path] *)
let entry_file dir key =
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".vc")

let robustness_tests =
  [
    Alcotest.test_case "stale tmp files are collected on open" `Quick
      (fun () ->
        let dir = fresh_cache_dir () in
        Sys.mkdir dir 0o755;
        List.iter
          (fun f ->
            Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
                Out_channel.output_string oc "orphan"))
          [ "a.tmp"; "b.tmp"; "not_an_orphan.vc" ];
        let cache = Rc_util.Vercache.create dir in
        Alcotest.(check (list string)) "orphans swept" [] (tmp_files dir);
        Alcotest.(check bool) "non-tmp files survive" true
          (Sys.file_exists (Filename.concat dir "not_an_orphan.vc"));
        ignore cache);
    Alcotest.test_case "failed rename leaves no tmp orphan" `Quick (fun () ->
        let dir = fresh_cache_dir () in
        let cache = Rc_util.Vercache.create dir in
        (* a directory squatting on the entry path makes the final
           [Sys.rename] fail after the temp file was already written *)
        Sys.mkdir (entry_file dir "key1") 0o755;
        Rc_util.Vercache.store cache ~key:"key1" "payload";
        Alcotest.(check (list string)) "tmp removed on failure" []
          (tmp_files dir);
        (* the squatted path reads as corrupt: a miss, never an error *)
        Alcotest.(check bool) "lookup degrades to miss" true
          (Rc_util.Vercache.find cache ~key:"key1" = None));
    Alcotest.test_case "injected read fault degrades to miss" `Quick
      (fun () ->
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        Rc_util.Vercache.store cache ~key:"k" "v";
        Alcotest.(check bool) "entry is there" true
          (Rc_util.Vercache.find cache ~key:"k" = Some "v");
        let fault =
          Rc_util.Faultsim.create ~rate:1.0 ~sites:[ "cache.read" ] 11
        in
        Alcotest.(check bool) "faulted read misses" true
          (Rc_util.Vercache.find ~fault cache ~key:"k" = None);
        (* the entry itself is untouched *)
        Alcotest.(check bool) "entry survives" true
          (Rc_util.Vercache.find cache ~key:"k" = Some "v"));
    Alcotest.test_case "injected write fault skips the store" `Quick
      (fun () ->
        let dir = fresh_cache_dir () in
        let cache = Rc_util.Vercache.create dir in
        let fault =
          Rc_util.Faultsim.create ~rate:1.0 ~sites:[ "cache.write" ] 12
        in
        Rc_util.Vercache.store ~fault cache ~key:"k" "v";
        Alcotest.(check int) "nothing written" 0
          (Rc_util.Vercache.entries cache);
        Alcotest.(check (list string)) "no orphans" [] (tmp_files dir);
        (* an unfaulted store afterwards works normally *)
        Rc_util.Vercache.store cache ~key:"k" "v";
        Alcotest.(check bool) "recovers" true
          (Rc_util.Vercache.find cache ~key:"k" = Some "v"));
    Alcotest.test_case "persistent write failure disables the cache" `Quick
      (fun () ->
        let dir = fresh_cache_dir () in
        let cache = Rc_util.Vercache.create dir in
        let fault =
          Rc_util.Faultsim.create ~rate:1.0 ~sites:[ "cache.write" ] 13
        in
        for i = 1 to 8 do
          Rc_util.Vercache.store ~fault cache
            ~key:(string_of_int i)
            "v"
        done;
        Alcotest.(check bool) "disabled after threshold" true
          (Rc_util.Vercache.disabled cache);
        (* once disabled, even a healthy store is a no-op *)
        Rc_util.Vercache.store cache ~key:"healthy" "v";
        Alcotest.(check int) "no writes once disabled" 0
          (Rc_util.Vercache.entries cache);
        (* reads still work (for entries written before the failures) *)
        Alcotest.(check bool) "reads unaffected" true
          (Rc_util.Vercache.find cache ~key:"healthy" = None));
    Alcotest.test_case "a success resets the failure streak" `Quick
      (fun () ->
        let cache = Rc_util.Vercache.create (fresh_cache_dir ()) in
        let fault =
          Rc_util.Faultsim.create ~rate:1.0 ~sites:[ "cache.write" ] 14
        in
        for i = 1 to 7 do
          Rc_util.Vercache.store ~fault cache ~key:(string_of_int i) "v"
        done;
        Rc_util.Vercache.store cache ~key:"ok" "v";
        let fault2 =
          Rc_util.Faultsim.create ~rate:1.0 ~sites:[ "cache.write" ] 15
        in
        for i = 8 to 14 do
          Rc_util.Vercache.store ~fault:fault2 cache ~key:(string_of_int i) "v"
        done;
        Alcotest.(check bool) "7 + success + 7 stays enabled" false
          (Rc_util.Vercache.disabled cache));
  ]

let () =
  Alcotest.run "vercache"
    [ ("cache", cache_tests); ("robustness", robustness_tests) ]

(* The observability layer: span-tree well-formedness, determinism of
   the exported trace and metrics across [-j N], the zero-cost disabled
   path, and composition with the verification cache and with
   fault-injection campaigns.

   The determinism contract under test (DESIGN.md §7): the *logical*
   event sequence — span names, nesting, categories, arguments, counter
   values — is a pure function of the session configuration and the
   source.  Only timestamps, durations and the [sched] category (task →
   domain placement) may differ between runs, and [~normalize:true]
   erases exactly those. *)

module Driver = Rc_frontend.Driver
module Session = Rc_refinedc.Session
module Trace = Rc_util.Trace
module Metrics = Rc_util.Metrics
module Obs = Rc_util.Obs
module Stats = Rc_lithium.Stats
module Faultsim = Rc_util.Faultsim

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let obs_cfg = { Obs.c_trace = true; c_metrics = true }

let session () = Session.with_obs (Rc_studies.Studies.session ()) obs_cfg

let check ?(session = session ()) ?jobs ?cache file =
  Driver.check_file ~session ?jobs ?cache (Filename.concat case_dir file)

(* ------------------------------------------------------------------ *)
(* Satellite: Stats.merge must preserve source order of manual_detail  *)
(* ------------------------------------------------------------------ *)

let stats_merge_tests =
  [
    Alcotest.test_case "merge keeps manual_detail in source order" `Quick
      (fun () ->
        let mk sides =
          let s = Stats.create () in
          List.iter
            (fun (solver, printed) ->
              Stats.record_side s (Rc_pure.Registry.Via_solver solver) printed)
            sides;
          s
        in
        (* [a] is the earlier (source-order) function, [b] the later *)
        let a = mk [ ("s1", "pa1"); ("s1", "pa2") ] in
        let b = mk [ ("s2", "pb1"); ("s2", "pb2") ] in
        Stats.merge a b;
        let json = Stats.to_json a in
        let find needle =
          match Str.search_forward (Str.regexp_string needle) json 0 with
          | i -> i
          | exception Not_found ->
              Alcotest.failf "%S not found in %s" needle json
        in
        (* chronological in the serialized output: a's entries, in their
           own order, then b's *)
        let order = List.map find [ "pa1"; "pa2"; "pb1"; "pb2" ] in
        Alcotest.(check bool)
          "pa1 < pa2 < pb1 < pb2 in serialized order" true
          (List.sort compare order = order);
        Alcotest.(check int) "manual count" 4 a.Stats.side_manual);
    Alcotest.test_case "merge is associative on manual_detail" `Quick
      (fun () ->
        let mk tag =
          let s = Stats.create () in
          Stats.record_side s (Rc_pure.Registry.Via_lemma tag) ("p" ^ tag);
          s
        in
        let left = mk "1" in
        Stats.merge left (mk "2");
        Stats.merge left (mk "3");
        let right23 = mk "2" in
        Stats.merge right23 (mk "3");
        let right = mk "1" in
        Stats.merge right right23;
        Alcotest.(check string)
          "(1+2)+3 = 1+(2+3)" (Stats.to_json left) (Stats.to_json right));
  ]

(* ------------------------------------------------------------------ *)
(* Trace primitives                                                    *)
(* ------------------------------------------------------------------ *)

let primitive_tests =
  [
    Alcotest.test_case "check_balance accepts a balanced trace" `Quick
      (fun () ->
        let t = Trace.make () in
        Trace.span_begin t ~cat:"x" "outer";
        Trace.span_begin t ~cat:"x" "inner";
        Trace.span_end t ~cat:"x" "inner";
        Trace.instant t ~cat:"x" "tick";
        Trace.span_end t ~cat:"x" "outer";
        Alcotest.(check (list string)) "no issues" [] (Trace.check_balance t));
    Alcotest.test_case "check_balance flags unclosed and mismatched spans"
      `Quick (fun () ->
        let t = Trace.make () in
        Trace.span_begin t ~cat:"x" "a";
        Trace.span_end t ~cat:"x" "b";
        Trace.span_begin t ~cat:"x" "c";
        Alcotest.(check int)
          "two issues" 2
          (List.length (Trace.check_balance t)));
    Alcotest.test_case "normalize strips sched and zeroes time" `Quick
      (fun () ->
        let t = Trace.make () in
        Trace.instant t ~cat:"sched" "task:begin";
        Trace.span_begin t ~cat:"check" "fn:f";
        Trace.span_end t ~cat:"check" "fn:f";
        let s = Trace.to_chrome_string ~normalize:true t in
        Alcotest.(check bool)
          "no sched events" false
          (try
             ignore (Str.search_forward (Str.regexp_string "sched") s 0);
             true
           with Not_found -> false);
        Alcotest.(check bool)
          "fn span survives" true
          (try
             ignore (Str.search_forward (Str.regexp_string "fn:f") s 0);
             true
           with Not_found -> false));
    Alcotest.test_case "disabled tracer records nothing" `Quick (fun () ->
        let t = Trace.off in
        Trace.span_begin t ~cat:"x" "a";
        Trace.instant t ~cat:"x" "b";
        Trace.span_end t ~cat:"x" "a";
        Alcotest.(check int) "no events" 0 (Trace.event_count t));
    Alcotest.test_case "metrics merge is deterministic and additive" `Quick
      (fun () ->
        let a = Metrics.make () and b = Metrics.make () in
        Metrics.incr a "k";
        Metrics.incr b ~by:2 "k";
        Metrics.observe_ns a "t" 100L;
        Metrics.observe_ns b "t" 200L;
        Metrics.merge a b;
        Alcotest.(check int) "counter" 3 (Metrics.counter a "k");
        Alcotest.(check int) "timer count" 2 (Metrics.timer_count a "t");
        Alcotest.(check int64)
          "timer total" 300L
          (Metrics.timer_total_ns a "t"));
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline traces                                                     *)
(* ------------------------------------------------------------------ *)

let norm_trace (t : Driver.t) =
  Trace.to_chrome_string ~normalize:true (Obs.tr t.Driver.obs)

let norm_metrics (t : Driver.t) =
  Rc_util.Jsonout.to_string
    (Metrics.to_json ~timings:false (Obs.mx t.Driver.obs))

let pipeline_tests =
  [
    Alcotest.test_case "trace is balanced and non-empty" `Quick (fun () ->
        let t = check "binary_search.c" in
        let tr = Obs.tr t.Driver.obs in
        Alcotest.(check bool) "has events" true (Trace.event_count tr > 0);
        Alcotest.(check (list string)) "balanced" [] (Trace.check_balance tr);
        (* the span tree covers all layers of the pipeline *)
        let s = Trace.to_chrome_string tr in
        List.iter
          (fun needle ->
            Alcotest.(check bool) (needle ^ " present") true
              (try
                 ignore (Str.search_forward (Str.regexp_string needle) s 0);
                 true
               with Not_found -> false))
          [ "phase:parse"; "phase:elab"; "phase:check"; "rule:"; "solve" ])
    ;
    Alcotest.test_case "metrics mirror the Figure-7 statistics" `Quick
      (fun () ->
        let t = check "binary_search.c" in
        let m = Obs.mx t.Driver.obs in
        let s = Driver.stats t in
        Alcotest.(check int)
          "evar.insts" s.Stats.evar_insts
          (Metrics.counter m "evar.insts");
        Alcotest.(check int)
          "side.auto" s.Stats.side_auto
          (Metrics.counter m "side.auto");
        Alcotest.(check int)
          "side.manual" s.Stats.side_manual
          (Metrics.counter m "side.manual");
        let rule_apps_total =
          List.fold_left
            (fun acc (_, n) -> acc + n)
            0
            (Metrics.counters_with_prefix m ~prefix:"rule.apps.")
        in
        Alcotest.(check int) "rule.apps.*" s.Stats.rule_apps rule_apps_total);
    Alcotest.test_case "-j1 and -j4 traces are byte-identical normalized"
      `Quick (fun () ->
        if not Rc_util.Pool.parallelism_available then Alcotest.skip ();
        let seq = check ~jobs:1 "hashmap.c" in
        let par = check ~jobs:4 "hashmap.c" in
        Alcotest.(check string)
          "normalized trace" (norm_trace seq) (norm_trace par);
        Alcotest.(check string)
          "count-only metrics" (norm_metrics seq) (norm_metrics par));
    Alcotest.test_case "observability off means no trace, no metrics"
      `Quick (fun () ->
        let t =
          Driver.check_file
            ~session:(Rc_studies.Studies.session ())
            (Filename.concat case_dir "binary_search.c")
        in
        Alcotest.(check bool) "obs off" false (Obs.on t.Driver.obs);
        Alcotest.(check int)
          "no events" 0
          (Trace.event_count (Obs.tr t.Driver.obs));
        Alcotest.(check string)
          "metrics block is null" "null"
          (Rc_util.Jsonout.to_string
             (Metrics.to_json (Obs.mx t.Driver.obs))));
    Alcotest.test_case "verdicts unchanged by observability" `Quick
      (fun () ->
        let on = check "queue.c" in
        let off =
          Driver.check_file
            ~session:(Rc_studies.Studies.session ())
            (Filename.concat case_dir "queue.c")
        in
        Alcotest.(check string)
          "same report"
          (Rc_util.Jsonout.to_string (Driver.to_json ~timings:false off))
          (Rc_util.Jsonout.to_string
             (Driver.to_json ~timings:false
                { on with Driver.obs = Obs.off })))
    ;
  ]

(* ------------------------------------------------------------------ *)
(* Composition: cache and fault injection                              *)
(* ------------------------------------------------------------------ *)

(* distinct scratch directory per run ({!Rc_util.Vercache.create} makes
   the directory itself) *)
let tmpdir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  base ^ "-d"

let composition_tests =
  [
    Alcotest.test_case "cache hits/misses recorded in metrics" `Quick
      (fun () ->
        let dir = tmpdir "rc-trace-cache" in
        let cache = Rc_util.Vercache.create dir in
        let cold = check ~cache "linked_list.c" in
        let warm = check ~cache "linked_list.c" in
        let n = List.length cold.Driver.results in
        let counter t k = Metrics.counter (Obs.mx t.Driver.obs) k in
        Alcotest.(check int) "cold misses" n (counter cold "cache.miss");
        Alcotest.(check int) "cold hits" 0 (counter cold "cache.hit");
        Alcotest.(check int) "warm hits" n (counter warm "cache.hit");
        Alcotest.(check int) "warm misses" 0 (counter warm "cache.miss");
        (match warm.Driver.cache_stats with
        | Some (hits, misses) ->
            Alcotest.(check int) "metrics agree with cache_stats (hits)"
              hits (counter warm "cache.hit");
            Alcotest.(check int) "metrics agree with cache_stats (misses)"
              misses (counter warm "cache.miss")
        | None -> Alcotest.fail "expected cache stats");
        Alcotest.(check (list string))
          "warm trace still balanced" []
          (Trace.check_balance (Obs.tr warm.Driver.obs)));
    Alcotest.test_case "trace stays balanced under injected faults" `Quick
      (fun () ->
        (* a campaign that kills the first solver call: the rule spans
           open at the crash must be closed during unwinding, so the
           exported trace still balances *)
        let campaign =
          Faultsim.create ~rate:1.0 ~sites:[ "solver" ] ~max_faults:1 42
        in
        let session =
          Session.with_obs
            (Session.with_fault
               (Rc_studies.Studies.session ())
               (Some campaign))
            obs_cfg
        in
        let t = check ~session "binary_search.c" in
        Alcotest.(check bool)
          "campaign fired" true
          (List.length (Driver.faults t) > 0);
        let tr = Obs.tr t.Driver.obs in
        Alcotest.(check bool) "has events" true (Trace.event_count tr > 0);
        Alcotest.(check (list string)) "balanced" [] (Trace.check_balance tr));
    Alcotest.test_case "trace stays balanced under an exhausted budget"
      `Quick (fun () ->
        let session =
          Session.with_obs
            (Session.with_budget
               (Rc_studies.Studies.session ())
               { Rc_util.Budget.fuel = Some 10; timeout = None;
                 max_depth = None })
            obs_cfg
        in
        let t = check ~session "hashmap.c" in
        Alcotest.(check bool)
          "budget fired" true
          (List.length (Driver.faults t) > 0);
        let m = Obs.mx t.Driver.obs in
        Alcotest.(check bool)
          "budget counter recorded" true
          (Metrics.counter m "budget.out_of_fuel" > 0);
        Alcotest.(check (list string))
          "balanced" []
          (Trace.check_balance (Obs.tr t.Driver.obs)));
  ]

let () =
  Alcotest.run "trace"
    [
      ("stats_merge", stats_merge_tests);
      ("primitives", primitive_tests);
      ("pipeline", pipeline_tests);
      ("composition", composition_tests);
    ]

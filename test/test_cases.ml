(* Integration tests over the full Figure-7 corpus:

   - every case study verifies;
   - every emitted certificate re-checks with the independent checker;
   - the semantic-soundness harness finds no UB in any verified function;
   - soundness mutations: breaking the code or the spec in each class of
     ways makes verification FAIL (the type system rejects wrong code). *)

module Driver = Rc_frontend.Driver

(* One fresh case-study session per checked file: elaboration registers
   the file's own named types into the session tenv, so sessions are not
   shared across files. *)
let session () = Rc_studies.Studies.session ()

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let read name =
  In_channel.with_open_bin (Filename.concat case_dir name)
    In_channel.input_all

let corpus =
  [
    "mem_alloc.c"; "free_list.c"; "linked_list.c"; "queue.c";
    "binary_search.c"; "talloc.c"; "page_alloc.c"; "bst_layered.c";
    "bst_direct.c"; "hashmap.c"; "mpool.c"; "spinlock.c"; "barrier.c";
  ]

let verify_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let t =
            Driver.check_file ~session:(session ())
              (Filename.concat case_dir file)
          in
          match Driver.errors t with
          | [] -> ()
          | (fn, e) :: _ ->
              Alcotest.failf "%s failed:@.%s" fn
                (Rc_lithium.Report.to_string e)))
    corpus

let cert_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let s = session () in
          let t = Driver.check_file ~session:s (Filename.concat case_dir file) in
          List.iter
            (fun (r : Driver.check_result) ->
              match r.outcome with
              | Ok res ->
                  let rep =
                    Rc_cert.Checker.check ~session:s
                      res.Rc_refinedc.Lang.E.deriv
                  in
                  if not (Rc_cert.Checker.ok rep) then
                    Alcotest.failf "certificate for %s: %s" r.name
                      (Fmt.str "%a" Rc_cert.Checker.pp_report rep)
              | Error _ -> Alcotest.fail "verification failed")
            t.results))
    corpus

let semtest_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let s = session () in
          let t = Driver.check_file ~session:s (Filename.concat case_dir file) in
          let impls =
            List.map
              (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
                (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
              t.elaborated.Rc_frontend.Elab.to_check
          in
          List.iter
            (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
              match
                Rc_sem.Semtest.check_fn ~runs:25 ~impls ~session:s
                  t.elaborated.Rc_frontend.Elab.program f.spec
              with
              | Rc_sem.Semtest.Ub_found msg ->
                  Alcotest.failf "UB in %s: %s"
                    f.spec.Rc_refinedc.Rtype.fs_name msg
              | _ -> ())
            t.elaborated.Rc_frontend.Elab.to_check))
    corpus

(* --------------------------------------------------------------- *)
(* Soundness mutations: wrong code/specs must be rejected            *)
(* --------------------------------------------------------------- *)

let mutation name file ~from_ ~to_ ~fn =
  Alcotest.test_case name `Quick (fun () ->
      let src = read file in
      let mutated = Str.global_replace (Str.regexp_string from_) to_ src in
      if mutated = src then Alcotest.failf "mutation %s did not apply" name;
      match
        Driver.check_source ~session:(session ())
          ~file:("mutated_" ^ file) mutated
      with
      | exception Driver.Frontend_error _ -> () (* rejected even earlier *)
      | t ->
          let errs = Driver.errors t in
          if not (List.mem_assoc fn errs) then
            Alcotest.failf "mutated %s still verifies!" fn)

let mutation_tests =
  [
    (* forget the bounds check entirely: overflow + ownership failure *)
    mutation "alloc without the size check" "mem_alloc.c"
      ~from_:"if (sz > d->len)\n    return NULL;" ~to_:"" ~fn:"alloc";
    (* §2.1: off-by-one in the spec *)
    mutation "alloc with n < a spec" "mem_alloc.c"
      ~from_:"{n <= a} @ optional" ~to_:"{n < a} @ optional" ~fn:"alloc";
    (* drop the header-fits precondition of free (Figure 3) *)
    mutation "free without sizeof precondition" "free_list.c"
      ~from_:"[[rc::requires(\"{sizeof(struct chunk) \xe2\x89\xa4 n}\")]]"
      ~to_:"" ~fn:"free_chunk";
    (* break the sortedness maintenance of free: insert before smaller *)
    mutation "free inserting unsorted" "free_list.c"
      ~from_:"if (sz <= (*cur)->size)" ~to_:"if (sz >= (*cur)->size)"
      ~fn:"free_chunk";
    (* BST descending the wrong way breaks the set specification *)
    mutation "bst_member descending wrong subtree" "bst_direct.c"
      ~from_:"return bst_member(t->left, k);"
      ~to_:"return bst_member(t->right, k);" ~fn:"bst_member";
    (* unprotected critical section: the counter resource is absent *)
    mutation "unlock without holding the resource" "spinlock.c"
      ~from_:"[[rc::requires(\"own c : int<int>\")]]" ~to_:""
      ~fn:"spin_unlock";
    (* hashmap probing out of bounds *)
    mutation "hashmap probing past the capacity" "hashmap.c"
      ~from_:"j = (j + 1) % cap;" ~to_:"j = j + 1;" ~fn:"hm_insert";
    (* queue: forget to terminate the new node *)
    mutation "enqueue without next = NULL" "queue.c"
      ~from_:"n->next = NULL;" ~to_:"" ~fn:"enqueue";
    (* page allocator: free a too-small block *)
    mutation "page_free of a half page" "page_alloc.c"
      ~from_:"\"&own<uninit<4096>>\"" ~to_:"\"&own<uninit<2048>>\""
      ~fn:"page_free";
  ]

let () =
  Alcotest.run "case-studies"
    [
      ("verify", verify_tests);
      ("certificates", cert_tests);
      ("semantic-soundness", semtest_tests);
      ("mutations-rejected", mutation_tests);
    ]

(* Determinism of the parallel checking pipeline: for every corpus case
   study, a [-j 4] run must be observably identical to the sequential
   [-j 1] run — same per-function verdicts in the same order, the same
   Figure-7 statistics, the same exit code.  On an OCaml 4.x build the
   domain pool degrades to [List.map], which makes these tests trivially
   true; they skip rather than pretend to have tested parallelism. *)

module Driver = Rc_frontend.Driver
module Stats = Rc_lithium.Stats

let session () = Rc_studies.Studies.session ()

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let corpus =
  [
    "linked_list.c"; "queue.c"; "binary_search.c"; "talloc.c";
    "page_alloc.c"; "bst_layered.c"; "bst_direct.c"; "hashmap.c";
    "mpool.c"; "spinlock.c"; "barrier.c";
  ]

(* The observable outcome of one function's check: everything the CLI
   reports except wall-clock time. *)
let outcome_signature (r : Driver.check_result) : string =
  match r.outcome with
  | Ok res ->
      let s = res.Rc_refinedc.Lang.E.stats in
      Fmt.str "%s:ok:apps=%d:distinct=%d:evars=%d:side=%d/%d" r.name
        s.Stats.rule_apps (Stats.distinct_rules s) s.Stats.evar_insts
        s.Stats.side_auto s.Stats.side_manual
  | Error e -> Fmt.str "%s:error:%s" r.name (Rc_lithium.Report.to_string e)

let run_signature (t : Driver.t) : string list =
  List.map outcome_signature t.Driver.results
  @ List.map (fun fn -> fn ^ ":skipped") t.Driver.skipped

let determinism_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          if not Rc_util.Pool.parallelism_available then
            Alcotest.skip ();
          let path = Filename.concat case_dir file in
          let seq = Driver.check_file ~session:(session ()) ~jobs:1 path in
          let par = Driver.check_file ~session:(session ()) ~jobs:4 path in
          Alcotest.(check (list string))
            "per-function outcomes" (run_signature seq) (run_signature par);
          let agg t =
            let s = Driver.stats t in
            Fmt.str "apps=%d evars=%d side=%d/%d" s.Stats.rule_apps
              s.Stats.evar_insts s.Stats.side_auto s.Stats.side_manual
          in
          Alcotest.(check string)
            "aggregate Figure-7 statistics" (agg seq) (agg par);
          Alcotest.(check int)
            "exit code" (Driver.exit_code seq) (Driver.exit_code par);
          (* --json must be byte-identical between -j1 and -j4 once the
             wall-clock fields (the only nondeterministic part of the
             report) are zeroed; per-session stats merge is
             deterministic, so rules_used ordering is too *)
          let json t =
            Rc_util.Jsonout.to_string (Driver.to_json ~timings:false t)
          in
          Alcotest.(check string) "JSON output" (json seq) (json par);
          (* the lint pre-pass runs on by default; its diagnostics are
             part of the JSON above, so they must be deterministically
             ordered — the driver guarantees (file, loc, code) order *)
          Alcotest.(check bool)
            "diagnostics sorted" true
            (Rc_util.Diagnostic.is_sorted seq.Driver.diagnostics);
          Alcotest.(check bool)
            "diagnostics identical across -j" true
            (List.equal
               (fun a b -> Rc_util.Diagnostic.compare a b = 0)
               seq.Driver.diagnostics par.Driver.diagnostics)))
    corpus

let pool_tests =
  [
    Alcotest.test_case "map preserves input order" `Quick (fun () ->
        let xs = List.init 100 Fun.id in
        Alcotest.(check (list int))
          "order" (List.map succ xs)
          (Rc_util.Pool.map ~jobs:4 succ xs));
    Alcotest.test_case "map re-raises worker exceptions" `Quick (fun () ->
        match
          Rc_util.Pool.map ~jobs:4
            (fun i -> if i = 37 then failwith "boom" else i)
            (List.init 100 Fun.id)
        with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg -> Alcotest.(check string) "msg" "boom" msg);
    Alcotest.test_case "jobs=1 is exactly List.map" `Quick (fun () ->
        let xs = [ 3; 1; 4; 1; 5 ] in
        Alcotest.(check (list int))
          "same" (List.map (( * ) 2) xs)
          (Rc_util.Pool.map ~jobs:1 (( * ) 2) xs));
    Alcotest.test_case "default_jobs is positive" `Quick (fun () ->
        Alcotest.(check bool) "positive" true (Rc_util.Pool.default_jobs () > 0));
  ]

let () =
  Alcotest.run "parallel"
    [ ("determinism", determinism_tests); ("pool", pool_tests) ]

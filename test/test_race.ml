(* Differential validation of the static concurrency analysis
   (RC-L030..RC-L032, lib/analysis/locksum.ml) against the dynamic
   vector-clock race monitor (lib/caesium/eval.ml):

   - the three concurrent case studies lint race-clean AND stay
     race-free under hundreds of seeded two-thread schedules;
   - seeded-race mutants (lock call removed, access hoisted above the
     acquire) draw a dynamic Data_race — and every function the monitor
     catches must already carry a static RC-L030 (the soundness
     direction of the Eraser criterion: the lockset analysis
     over-approximates, so a dynamically observable race with an empty
     report list is a bug in the analysis);
   - the lock_farm corpus family behaves the same at generator scale;
   - dedicated fixtures pin RC-L031 (release balance) and RC-L032
     (lock order).

   The schedule budget defaults to 200 seeds and is split across the
   differential cases; CI's race-smoke job shrinks it via RC_RACE_SEEDS. *)

module Value = Rc_caesium.Value
module Int_type = Rc_caesium.Int_type
module Eval = Rc_caesium.Eval
module Heap = Rc_caesium.Heap
module Ub = Rc_caesium.Ub
module Elab = Rc_frontend.Elab
module Driver = Rc_frontend.Driver
module Diagnostic = Rc_util.Diagnostic
module Api = Rc_session.Refinedc_api
module Corpus = Rc_benchgen.Corpus

let session () = Api.create_session ~case_studies:true ()

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let read name =
  In_channel.with_open_bin (Filename.concat case_dir name)
    In_channel.input_all

let seed_budget =
  match Sys.getenv_opt "RC_RACE_SEEDS" with
  | Some s -> ( try max 8 (int_of_string s) with Failure _ -> 200)
  | None -> 200

(* the per-case slices of the budget; at the default 200 they sum to the
   full differential sweep the acceptance criteria ask for *)
let slice frac = max 2 (seed_budget * frac / 100)

let elab ~file src =
  let session = session () in
  Driver.parse_and_elab ~session ~file src

let lint ~file src =
  let session = session () in
  let elaborated = Driver.parse_and_elab ~session ~file src in
  Driver.lint_elaborated ~session ~file elaborated

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let race_in fname ds =
  List.exists
    (fun (d : Diagnostic.t) ->
      d.code = "RC-L030" && contains d.message ("in " ^ fname ^ ":"))
    ds

let codes_of ds = List.map (fun (d : Diagnostic.t) -> d.code) ds

let no_race_codes ds =
  List.filter
    (fun (d : Diagnostic.t) ->
      d.code = "RC-L030" || d.code = "RC-L031" || d.code = "RC-L032")
    ds

(* ---------------------------------------------------------------- *)
(* Dynamic side: two threads of [fname(lock, counter)] under seeded  *)
(* random schedules, vector-clock monitor armed                      *)
(* ---------------------------------------------------------------- *)

(* Returns the seeds on which the monitor flagged a data race.  Both
   slots are zero-initialized 4-byte cells, matching the struct lock /
   int counter signatures every fixture here uses. *)
let race_hunt (prog : Rc_caesium.Syntax.program) fname seeds : int list =
  List.filter
    (fun seed ->
      let m = Eval.create ~detect_races:true prog in
      let heap = m.Eval.heap in
      let lock = Heap.alloc heap 4 in
      let counter = Heap.alloc heap 4 in
      Heap.store heap lock (Value.of_int Int_type.i32 0);
      Heap.store heap counter (Value.of_int Int_type.i32 0);
      let mk tid =
        let th =
          { Eval.tid; frames = []; finished = false; result = None;
            clock = Eval.Vc.create 2 }
        in
        th.clock.(tid) <- 1;
        th
      in
      let t0 = mk 0 and t1 = mk 1 in
      m.Eval.threads <- [ t0; t1 ];
      let args = [ Value.of_loc lock; Value.of_loc counter ] in
      try
        Eval.push_call m t0 fname args None;
        Eval.push_call m t1 fname args None;
        let rng = Random.State.make [| seed |] in
        let rec loop fuel =
          if fuel = 0 then ()
          else
            let runnable =
              List.filter (fun th -> not th.Eval.finished) m.Eval.threads
            in
            match runnable with
            | [] -> ()
            | ths -> (
                let th =
                  List.nth ths (Random.State.int rng (List.length ths))
                in
                match Eval.step m th with
                | () -> loop (fuel - 1)
                | exception Eval.Thread_done -> loop (fuel - 1))
        in
        loop 50_000;
        false
      with
      | Ub.Undef (Ub.Data_race _) -> true
      | Ub.Undef _ -> false)
    seeds

let seeds n = List.init n (fun i -> i + 1)

(* ---------------------------------------------------------------- *)
(* The three concurrent studies: race-clean, statically and           *)
(* dynamically                                                        *)
(* ---------------------------------------------------------------- *)

let study_tests =
  List.map
    (fun file ->
      Alcotest.test_case (file ^ " lints race-clean") `Quick (fun () ->
          let ds = lint ~file (read file) in
          Alcotest.(check (list string))
            "no RC-L03x" []
            (codes_of (no_race_codes ds))))
    [ "spinlock.c"; "barrier.c"; "mpool.c" ]

(* ---------------------------------------------------------------- *)
(* Differential: base spinlock critical section vs. seeded mutants    *)
(* ---------------------------------------------------------------- *)

(* String-edit mutants of the real spinlock.c.  The edited line appears
   only inside locked_reset (the definition of spin_lock does not
   contain a call to itself), so the lock protocol functions stay
   intact and only the critical section loses its discipline. *)
let base_src () = read "spinlock.c"

let lock_removed_src () =
  let src = base_src () in
  let edited =
    Str.replace_first (Str.regexp_string "  spin_lock(l);\n") "" src
  in
  Alcotest.(check bool) "mutant edit applied" true (edited <> src);
  edited

let hoisted_src () =
  let src = base_src () in
  let edited =
    Str.replace_first
      (Str.regexp_string "  spin_lock(l);\n  *counter = 0;\n")
      "  *counter = 0;\n  spin_lock(l);\n" src
  in
  Alcotest.(check bool) "mutant edit applied" true (edited <> src);
  edited

let differential_tests =
  [
    Alcotest.test_case "verified critical section is race-free" `Slow
      (fun () ->
        let src = base_src () in
        let el = elab ~file:"spinlock.c" src in
        let racy_seeds =
          race_hunt el.Elab.program "locked_reset" (seeds (slice 40))
        in
        Alcotest.(check (list int)) "no dynamic race" [] racy_seeds;
        let ds = lint ~file:"spinlock.c" src in
        Alcotest.(check bool)
          "no static RC-L030 either" false
          (race_in "locked_reset" ds));
    Alcotest.test_case "lock-removed mutant: dynamic race ⇒ RC-L030" `Slow
      (fun () ->
        let src = lock_removed_src () in
        let el = elab ~file:"spinlock_nolock.c" src in
        let racy_seeds =
          race_hunt el.Elab.program "locked_reset" (seeds (slice 20))
        in
        Alcotest.(check bool)
          "monitor observes the race" true (racy_seeds <> []);
        (* the soundness direction: dynamically caught ⇒ statically
           reported *)
        let ds = lint ~file:"spinlock_nolock.c" src in
        Alcotest.(check bool)
          "static analysis covers it" true
          (race_in "locked_reset" ds));
    Alcotest.test_case "hoisted-access mutant: dynamic race ⇒ RC-L030" `Slow
      (fun () ->
        let src = hoisted_src () in
        let el = elab ~file:"spinlock_hoist.c" src in
        let racy_seeds =
          race_hunt el.Elab.program "locked_reset" (seeds (slice 20))
        in
        Alcotest.(check bool)
          "monitor observes the race" true (racy_seeds <> []);
        let ds = lint ~file:"spinlock_hoist.c" src in
        Alcotest.(check bool)
          "static analysis covers it" true
          (race_in "locked_reset" ds));
  ]

(* ---------------------------------------------------------------- *)
(* The lock_farm corpus family                                        *)
(* ---------------------------------------------------------------- *)

let lock_farm_tests =
  [
    Alcotest.test_case "clean farm verifies and lints race-clean" `Slow
      (fun () ->
        let src = Corpus.lock_farm ~functions:3 () in
        let t =
          Driver.check_source ~session:(session ()) ~file:"lock_farm.c" src
        in
        (match Driver.errors t with
        | [] -> ()
        | (fn, e) :: _ ->
            Alcotest.failf "%s failed:@.%s" fn (Rc_lithium.Report.to_string e));
        let ds = lint ~file:"lock_farm.c" src in
        Alcotest.(check (list string))
          "no RC-L03x" []
          (codes_of (no_race_codes ds)));
    Alcotest.test_case "seeded farm: every racy fn drawn, no crit fn" `Slow
      (fun () ->
        let src = Corpus.lock_farm ~functions:2 ~racy:2 ~hoisted:1 () in
        let ds = lint ~file:"lock_farm_racy.c" src in
        List.iter
          (fun f ->
            Alcotest.(check bool) (f ^ " flagged") true (race_in f ds))
          [ "racy0"; "racy1"; "hoist0" ];
        List.iter
          (fun f ->
            Alcotest.(check bool) (f ^ " clean") false (race_in f ds))
          [ "crit0"; "crit1"; "spin_lock"; "spin_unlock" ]);
    Alcotest.test_case "seeded farm: dynamic races covered statically" `Slow
      (fun () ->
        let src = Corpus.lock_farm ~functions:1 ~racy:1 () in
        let el = elab ~file:"lock_farm_dyn.c" src in
        let ds = lint ~file:"lock_farm_dyn.c" src in
        (* crit0 under the lock: no race, dynamically or statically *)
        Alcotest.(check (list int))
          "crit0 race-free" []
          (race_hunt el.Elab.program "crit0" (seeds (slice 10)));
        Alcotest.(check bool) "crit0 clean" false (race_in "crit0" ds);
        (* racy0: the monitor finds it, and RC-L030 already covers it *)
        let racy_seeds =
          race_hunt el.Elab.program "racy0" (seeds (slice 10))
        in
        Alcotest.(check bool)
          "racy0 observed dynamically" true (racy_seeds <> []);
        Alcotest.(check bool) "racy0 covered" true (race_in "racy0" ds));
  ]

(* ---------------------------------------------------------------- *)
(* RC-L031 / RC-L032 fixtures                                         *)
(* ---------------------------------------------------------------- *)

let lock_proto =
  {|
struct lock { int locked; };

void spin_lock(struct lock* l) {
  int expected = 0;
  while (1) {
    expected = 0;
    int ok = atomic_compare_exchange_strong(&l->locked, &expected, 1);
    if (ok)
      return;
  }
}

void spin_unlock(struct lock* l) {
  atomic_store(&l->locked, 0);
}
|}

let leak_src =
  lock_proto
  ^ {|
void leak(struct lock* l, int* counter, int n) {
  spin_lock(l);
  *counter = n;
  if (n > 0) {
    spin_unlock(l);
  }
}
|}

let order_src =
  lock_proto
  ^ {|
void ab(struct lock* a, struct lock* b, int* counter) {
  spin_lock(a);
  spin_lock(b);
  *counter = 1;
  spin_unlock(b);
  spin_unlock(a);
}

void ba(struct lock* a, struct lock* b, int* counter) {
  spin_lock(b);
  spin_lock(a);
  *counter = 2;
  spin_unlock(a);
  spin_unlock(b);
}
|}

let fixture_tests =
  [
    Alcotest.test_case "RC-L031: conditional release flagged" `Quick
      (fun () ->
        let ds = lint ~file:"leak.c" leak_src in
        Alcotest.(check bool)
          "RC-L031 present" true
          (List.exists (fun (d : Diagnostic.t) -> d.code = "RC-L031") ds);
        (* the hand-off in spin_lock itself must NOT be flagged: it
           returns with the lock held on every path *)
        Alcotest.(check bool)
          "spin_lock hand-off clean" false
          (List.exists
             (fun (d : Diagnostic.t) ->
               d.code = "RC-L031" && contains d.message "in spin_lock")
             ds));
    Alcotest.test_case "RC-L032: opposite acquisition orders flagged" `Quick
      (fun () ->
        let ds = lint ~file:"order.c" order_src in
        Alcotest.(check bool)
          "RC-L032 present" true
          (List.exists (fun (d : Diagnostic.t) -> d.code = "RC-L032") ds));
    Alcotest.test_case "consistent order is not flagged" `Quick (fun () ->
        let consistent =
          lock_proto
          ^ {|
void ab1(struct lock* a, struct lock* b, int* counter) {
  spin_lock(a);
  spin_lock(b);
  *counter = 1;
  spin_unlock(b);
  spin_unlock(a);
}

void ab2(struct lock* a, struct lock* b, int* counter) {
  spin_lock(a);
  spin_lock(b);
  *counter = 2;
  spin_unlock(b);
  spin_unlock(a);
}
|}
        in
        let ds = lint ~file:"order_ok.c" consistent in
        Alcotest.(check bool)
          "no RC-L032" false
          (List.exists (fun (d : Diagnostic.t) -> d.code = "RC-L032") ds));
    Alcotest.test_case "sequential unit: concurrency passes are silent"
      `Quick (fun () ->
        (* no atomic op anywhere: shared-looking accesses draw nothing *)
        let ds =
          lint ~file:"seq.c"
            {|
void bump(int* counter) {
  *counter = *counter + 1;
}
|}
        in
        Alcotest.(check (list string))
          "no RC-L03x" []
          (codes_of (no_race_codes ds)));
  ]

let () =
  Alcotest.run "race"
    [
      ("studies", study_tests);
      ("differential", differential_tests);
      ("lock_farm", lock_farm_tests);
      ("fixtures", fixture_tests);
    ]
